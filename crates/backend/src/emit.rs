//! Emission and linking: allocated MIR → a flat machine program.
//!
//! Implements the §3.3.4 code layout: per function, the speculative segment
//! (entry/prologue + all `CFG_spec` blocks) is laid out contiguously,
//! followed by a *skeleton segment* of exactly the same byte size whose
//! slot at offset `o` holds a branch to the handler of the region whose
//! instruction sits at spec-segment offset `o` (NOP where the mirrored
//! instruction cannot misspeculate). The prologue writes `Δ` (the spec
//! segment size) into the misspeculation displacement register; on
//! misspeculation the hardware jumps to `pc + Δ`, landing on the skeleton
//! branch. `CFG_orig` and the handlers follow the skeleton segment.
//!
//! Pseudos (calls, parameters, frame addresses, spills) are expanded here,
//! with parallel-move sequencing where physical registers could clash.

use crate::isel::CodegenOpts;
use crate::mir::{MBlockId, MOperand, MirInst, MirTerm, SMOperand, VReg};
use crate::regalloc::{AllocatedFn, Loc};
use interp::Layout;
use isa::{AluOp, MInst, MemWidth, Operand, Reg, Slice, SliceOperand, LR, SP};
use sir::Module;
use std::collections::HashMap;

/// A linked machine program ready for simulation.
#[derive(Debug, Clone)]
pub struct Program {
    /// The flat instruction image.
    pub insts: Vec<MInst>,
    /// Byte address of each instruction.
    pub addrs: Vec<u32>,
    /// Entry index (start of `main`).
    pub entry: usize,
    /// Index of the final `Halt` (initial link-register target).
    pub halt: usize,
    /// Per-function entry indices and names (diagnostics).
    pub func_entries: Vec<usize>,
    pub func_names: Vec<String>,
    /// Initial memory contents: (address, bytes) for global initializers.
    pub global_inits: Vec<(u32, Vec<u8>)>,
    /// Memory image size expected by the simulator.
    pub mem_size: u32,
    /// Compact (Thumb-like) encoding in effect.
    pub compact: bool,
    /// addr → instruction index (for `pc + Δ` resolution).
    pub addr_index: HashMap<u32, usize>,
    /// Misspeculation cover table: `(spec, branch, handler)` instruction
    /// indices — the misspeculation-capable instruction, its mirrored
    /// skeleton branch at `+Δ`, and the handler entry that branch targets.
    /// Recorded during skeleton emission and checked by [`verify_layout`].
    pub spec_targets: Vec<(usize, usize, usize)>,
    /// Predecoded per-instruction side table (parallel to `insts`): the
    /// static facts the simulator's fast path needs every step, computed
    /// once at link time so the run loop touches no `MInst` payload for
    /// fetch/interlock bookkeeping.
    pub pre: Vec<PreInst>,
}

/// Predecoded static facts about one linked instruction (see
/// [`Program::pre`]). Everything here is derivable from the `MInst` and
/// the encoding mode; the simulator reads this instead of re-deriving it
/// (and re-allocating) on every dynamic step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreInst {
    /// Read-register bitmask for the load-use interlock
    /// ([`MInst::interlock_read_mask`]).
    pub read_mask: u32,
    /// Destination mask when this is an interlocking word load
    /// ([`MInst::load_dest_mask`]).
    pub load_dest_mask: u32,
    /// Encoded size in bytes under the program's encoding mode.
    pub size: u32,
    /// I-fetch slots this instruction issues (`size.div_ceil(4).max(1)`).
    pub slots: u8,
    /// Whether a second fetch (at `addr + 4`) is required (`size > 4`).
    pub two_slot: bool,
}

impl PreInst {
    /// Predecodes `inst` under the given encoding mode.
    pub fn of(inst: &MInst, compact: bool) -> PreInst {
        let size = inst.size(compact);
        PreInst {
            read_mask: inst.interlock_read_mask(),
            load_dest_mask: inst.load_dest_mask(),
            size,
            slots: size.div_ceil(4).max(1) as u8,
            two_slot: size > 4,
        }
    }
}

impl Program {
    /// Total static code size in bytes.
    pub fn code_bytes(&self) -> u32 {
        self.insts.iter().map(|i| i.size(self.compact)).sum()
    }

    /// Static instruction count (excluding skeleton NOP padding).
    pub fn static_insts(&self) -> usize {
        self.insts
            .iter()
            .filter(|i| !matches!(i, MInst::Nop))
            .count()
    }
}

/// Default memory image size (matches the interpreter).
pub const MEM_SIZE: u32 = 8 << 20;

/// One branch-target fixup, *function-relative*: the slot index is within
/// the owning function's own code, and the target is either a block of the
/// same function or a symbolic callee. [`link_codes`] globalizes both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FnFixup {
    Block(MBlockId),
    Func(sir::FuncId),
}

/// Position-independent emitted code for one function: the per-function
/// share of the `emit` pass, before the serial layout/link pass. Every
/// index is function-relative and callee references stay symbolic
/// ([`FnFixup::Func`]), so a `FnCode` depends only on the function's own
/// allocated MIR and the codegen options — never on its neighbours or its
/// final base address. That is what makes it cacheable by function content.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FnCode {
    /// Function name (diagnostics; becomes `Program::func_names[fi]`).
    pub name: String,
    /// The function's instructions, branch targets unresolved (0) where a
    /// fixup is recorded.
    pub insts: Vec<MInst>,
    /// Branch-slot fixups to resolve at link time.
    pub fixups: Vec<(usize, FnFixup)>,
    /// Block → first-instruction slot (function-relative).
    pub block_starts: Vec<(MBlockId, usize)>,
    /// `(spec slot, skeleton branch slot, handler block)` cover triples;
    /// globalized by [`link_codes`] into [`Program::spec_targets`].
    pub spec_pairs: Vec<(usize, usize, MBlockId)>,
}

/// Emits one allocated function to position-independent [`FnCode`]. The
/// Δ-skeleton layout (spec segment, mirrored skeleton, `SetDelta` patch) is
/// entirely intra-function, so this is the whole `emit` pass except the
/// final concatenation + fixup resolution of [`link_codes`].
pub fn emit_function(af: &AllocatedFn, opts: &CodegenOpts) -> FnCode {
    FnEmitter::new(af, opts).emit()
}

/// Links allocated functions into a program image: per-function emission
/// followed by the serial layout pass over the per-function code.
pub fn link(m: &Module, funcs: Vec<AllocatedFn>, opts: &CodegenOpts, layout: &Layout) -> Program {
    let codes: Vec<FnCode> = funcs.iter().map(|af| emit_function(af, opts)).collect();
    let refs: Vec<&FnCode> = codes.iter().collect();
    link_codes(m, &refs, opts, layout)
}

/// The serial layout/link pass: concatenates per-function code in function
/// order, resolves block/callee fixups against the global image, assigns
/// addresses, and derives the simulator side tables. This is the only
/// cross-function step of the back-end — given the same `codes` in the
/// same order it is a pure function of its inputs, which is what makes
/// parallel per-function compilation bit-identical to serial.
pub fn link_codes(m: &Module, codes: &[&FnCode], opts: &CodegenOpts, layout: &Layout) -> Program {
    let mut insts: Vec<MInst> = Vec::new();
    let mut fixups: Vec<(usize, usize, FnFixup)> = Vec::new();
    let mut func_entries = Vec::with_capacity(codes.len());
    let mut block_index: Vec<HashMap<MBlockId, usize>> = Vec::with_capacity(codes.len());
    let mut spec_targets: Vec<(usize, usize, usize)> = Vec::new();

    for (fi, code) in codes.iter().enumerate() {
        let base = insts.len();
        func_entries.push(base);
        for (slot, f) in &code.fixups {
            fixups.push((base + slot, fi, *f));
        }
        block_index.push(
            code.block_starts
                .iter()
                .map(|&(b, i)| (b, base + i))
                .collect(),
        );
        let bi = block_index.last().expect("just pushed");
        for &(spec, branch, handler) in &code.spec_pairs {
            spec_targets.push((base + spec, base + branch, bi[&handler]));
        }
        insts.extend(code.insts.iter().cloned());
    }
    // Halt stub.
    let halt = insts.len();
    insts.push(MInst::Halt);
    // Resolve fixups.
    for (slot, fi, f) in fixups {
        let target = match f {
            FnFixup::Block(b) => block_index[fi][&b],
            FnFixup::Func(fid) => func_entries[fid.index()],
        };
        match &mut insts[slot] {
            MInst::B { target: t } | MInst::Bc { target: t, .. } | MInst::Bl { target: t } => {
                *t = target;
            }
            other => panic!("fixup on non-branch {other:?}"),
        }
    }
    // Addresses.
    let mut addrs = Vec::with_capacity(insts.len());
    let mut addr = 0u32;
    for i in &insts {
        addrs.push(addr);
        addr += i.size(opts.compact);
    }
    let addr_index = addrs.iter().enumerate().map(|(i, a)| (*a, i)).collect();
    let entry = m
        .func_by_name("main")
        .map(|f| func_entries[f.index()])
        .unwrap_or(0);
    let global_inits = m
        .globals
        .iter()
        .enumerate()
        .filter(|(_, g)| !g.init.is_empty())
        .map(|(i, g)| (layout.addr(sir::GlobalId(i as u32)), g.init.clone()))
        .collect();
    let pre = insts.iter().map(|i| PreInst::of(i, opts.compact)).collect();
    Program {
        insts,
        addrs,
        entry,
        halt,
        func_entries,
        func_names: codes.iter().map(|c| c.name.clone()).collect(),
        global_inits,
        mem_size: MEM_SIZE,
        compact: opts.compact,
        addr_index,
        spec_targets,
        pre,
    }
}

/// Pass name for layout diagnostics.
pub const VERIFY_PASS: &str = "emit-verify";

/// Checks the §3.3.4 Δ-skeleton layout of a linked program: every
/// misspeculation-capable instruction must land, at `pc + Δ`, on an
/// instruction boundary (`EMIT-GRID`) holding its recorded skeleton branch
/// to its handler's entry (`EMIT-DELTA`), and no misspeculation-capable
/// instruction may lack a cover entry altogether (`EMIT-UNCOVERED`).
pub fn verify_layout(p: &Program) -> Vec<sir::Diag> {
    let mut problems = Vec::new();
    let func_of = |idx: usize| -> (usize, &str) {
        let fi = p
            .func_entries
            .partition_point(|&e| e <= idx)
            .saturating_sub(1);
        (fi, p.func_names.get(fi).map_or("?", |n| n.as_str()))
    };
    // Δ in effect at an instruction: the nearest preceding SetDelta within
    // the same function (after patching they all carry the same value).
    let delta_at = |idx: usize| -> Option<u32> {
        let (fi, _) = func_of(idx);
        let start = p.func_entries[fi];
        (start..=idx).rev().find_map(|i| match p.insts[i] {
            MInst::SetDelta { bytes } => Some(bytes),
            _ => None,
        })
    };
    let diag = |rule: &'static str, idx: usize, msg: String| {
        let (_, name) = func_of(idx);
        sir::Diag::new(rule, VERIFY_PASS, name, format!("#{idx}"), msg)
    };
    for &(spec, branch, handler) in &p.spec_targets {
        if !p.insts[spec].can_misspeculate() {
            problems.push(diag(
                "EMIT-DELTA",
                spec,
                "cover entry on a non-misspeculating instruction".into(),
            ));
            continue;
        }
        let Some(delta) = delta_at(spec) else {
            problems.push(diag(
                "EMIT-DELTA",
                spec,
                "no SetDelta precedes a misspeculation-capable instruction".into(),
            ));
            continue;
        };
        let land = p.addrs[spec] + delta;
        let Some(&landed) = p.addr_index.get(&land) else {
            problems.push(diag(
                "EMIT-GRID",
                spec,
                format!("pc+Δ = {land:#x} is not an instruction boundary"),
            ));
            continue;
        };
        if landed != branch {
            problems.push(diag(
                "EMIT-DELTA",
                spec,
                format!("pc+Δ lands on #{landed}, not the skeleton branch #{branch}"),
            ));
            continue;
        }
        match p.insts[branch] {
            MInst::B { target } if target == handler => {}
            MInst::B { target } => problems.push(diag(
                "EMIT-DELTA",
                branch,
                format!("skeleton branch targets #{target}, want handler #{handler}"),
            )),
            ref other => problems.push(diag(
                "EMIT-DELTA",
                branch,
                format!("skeleton slot holds {other:?}, want a branch to #{handler}"),
            )),
        }
    }
    let covered: std::collections::HashSet<usize> =
        p.spec_targets.iter().map(|&(s, _, _)| s).collect();
    for (i, inst) in p.insts.iter().enumerate() {
        if inst.can_misspeculate() && !covered.contains(&i) {
            problems.push(diag(
                "EMIT-UNCOVERED",
                i,
                "misspeculation-capable instruction without a skeleton cover entry".into(),
            ));
        }
    }
    problems
}

struct FnEmitter<'a> {
    af: &'a AllocatedFn,
    opts: &'a CodegenOpts,
    out: Vec<MInst>,
    fixups: Vec<(usize, FnFixup)>,
    block_starts: Vec<(MBlockId, usize)>,
    /// Handler (region) mirrored for each emitted spec-segment slot.
    spec_slots: Vec<Option<MBlockId>>,
    /// `(spec slot, skeleton branch slot, handler block)` cover triples,
    /// function-relative; globalized by [`link_codes`] into
    /// [`Program::spec_targets`].
    spec_pairs: Vec<(usize, usize, MBlockId)>,
    /// Index of SetDelta instructions to patch with Δ.
    delta_slots: Vec<usize>,
    frame: FrameInfo,
    /// Whether the block being emitted is on the speculative side (decides
    /// whether write-through values read their register or their slot).
    cur_spec_side: bool,
}

#[derive(Debug, Clone, Copy)]
struct FrameInfo {
    out_bytes: u32,
    spill_bytes: u32,
    alloca_bytes: u32,
    push_bytes: u32,
}

impl FrameInfo {
    fn frame_bytes(&self) -> u32 {
        self.out_bytes + self.spill_bytes + self.alloca_bytes
    }
}

impl<'a> FnEmitter<'a> {
    fn new(af: &'a AllocatedFn, opts: &'a CodegenOpts) -> Self {
        let out_words = af
            .mir
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter_map(|i| match i {
                MirInst::Call { args, .. } => Some(args.len().saturating_sub(4) as u32),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let alloca_bytes: u32 = af.mir.alloca_sizes.iter().map(|s| (s + 3) & !3).sum();
        let push_count = af.af_push_regs().len() as u32;
        let frame = FrameInfo {
            out_bytes: out_words * 4,
            spill_bytes: af.spill_slots * 4,
            alloca_bytes,
            push_bytes: push_count * 4,
        };
        FnEmitter {
            af,
            opts,
            out: Vec::new(),
            fixups: Vec::new(),
            block_starts: Vec::new(),
            spec_slots: Vec::new(),
            spec_pairs: Vec::new(),
            delta_slots: Vec::new(),
            frame,
            cur_spec_side: true,
        }
    }

    fn loc(&self, v: VReg) -> Loc {
        self.af.locs[v.index()]
    }

    /// Location with write-through normalized for *read-only* contexts:
    /// on the spec side the register is authoritative, elsewhere the slot.
    fn loc_read(&self, v: VReg) -> Loc {
        match self.af.locs[v.index()] {
            Loc::WriteThrough { reg, slot } => {
                if self.cur_spec_side {
                    Loc::Reg(reg)
                } else {
                    Loc::Spill(slot)
                }
            }
            Loc::WriteThroughSlice { slice, slot } => {
                if self.cur_spec_side {
                    Loc::Slice(slice)
                } else {
                    Loc::Spill(slot)
                }
            }
            l => l,
        }
    }

    fn spill_off(&self, slot: u32) -> i32 {
        (self.frame.out_bytes + slot * 4) as i32
    }

    fn alloca_off(&self, id: u32) -> i32 {
        let mut off = self.frame.out_bytes + self.frame.spill_bytes;
        for (i, s) in self.af.mir.alloca_sizes.iter().enumerate() {
            if i as u32 == id {
                break;
            }
            off += (s + 3) & !3;
        }
        off as i32
    }

    fn push(&mut self, i: MInst) {
        self.out.push(i);
    }

    fn emit(mut self) -> FnCode {
        let order = self.af.order.clone();
        let has_regions = !self.af.mir.regions.is_empty();
        let spec_count = order
            .iter()
            .take_while(|b| self.af.mir.block(**b).spec_side)
            .count();
        // --- spec segment (entry/prologue + CFG_spec) ----------------------
        for (oi, &b) in order.iter().enumerate().take(spec_count) {
            self.begin_block(b, oi, &order, true);
        }
        // --- skeleton segment ----------------------------------------------
        let spec_bytes: u32 = self.out.iter().map(|i| i.size(self.opts.compact)).sum();
        if has_regions {
            let mirrored: Vec<(Option<MBlockId>, u32)> = self
                .out
                .iter()
                .zip(&self.spec_slots)
                .map(|(i, h)| (*h, i.size(self.opts.compact)))
                .collect();
            for (spec_slot, (handler, size)) in mirrored.into_iter().enumerate() {
                match handler {
                    Some(h) => {
                        let slot = self.out.len();
                        self.push(MInst::B { target: 0 });
                        self.fixups.push((slot, FnFixup::Block(h)));
                        self.spec_pairs.push((spec_slot, slot, h));
                    }
                    None => {
                        // Mirror the byte footprint with NOP slots.
                        let unit = if self.opts.compact { 2 } else { 4 };
                        for _ in 0..(size / unit) {
                            self.push(MInst::Nop);
                        }
                    }
                }
            }
            for &slot in &self.delta_slots.clone() {
                if let MInst::SetDelta { bytes } = &mut self.out[slot] {
                    *bytes = spec_bytes;
                }
            }
        }
        // --- CFG_orig and handlers ------------------------------------------
        for (oi, &b) in order.iter().enumerate().skip(spec_count) {
            self.begin_block(b, oi, &order, false);
        }
        FnCode {
            name: self.af.mir.name.clone(),
            insts: self.out,
            fixups: self.fixups,
            block_starts: self.block_starts,
            spec_pairs: self.spec_pairs,
        }
    }

    fn begin_block(&mut self, b: MBlockId, oi: usize, order: &[MBlockId], in_spec: bool) {
        self.cur_spec_side = self.af.mir.block(b).spec_side;
        self.block_starts.push((b, self.out.len()));
        let before_block = self.out.len();
        let is_entry = b == self.af.mir.entry;
        if is_entry {
            self.emit_prologue();
        }
        // In-region handler label for skeleton mirroring.
        let handler = self
            .af
            .mir
            .block(b)
            .region
            .map(|r| self.af.mir.regions[r as usize].1);
        let mut param_run: Vec<(VReg, u32)> = Vec::new();
        let insts = self.af.mir.block(b).insts.clone();
        for inst in insts {
            if let MirInst::GetParam { rd, slot } = inst {
                param_run.push((rd, slot));
                continue;
            }
            if !param_run.is_empty() {
                self.flush_params(&std::mem::take(&mut param_run));
            }
            self.emit_inst(&inst);
        }
        if !param_run.is_empty() {
            self.flush_params(&std::mem::take(&mut param_run));
        }
        // Terminator.
        match self.af.mir.block(b).term.clone() {
            MirTerm::Br(t) => {
                // Fallthrough elision — only within the same segment (the
                // skeleton sits between the spec and non-spec segments).
                let next = order.get(oi + 1).copied();
                let next_in_same_seg =
                    next.map(|n| self.af.mir.block(n).spec_side == in_spec) == Some(true);
                if next == Some(t) && next_in_same_seg {
                    // fallthrough
                } else {
                    let slot = self.out.len();
                    self.push(MInst::B { target: 0 });
                    self.fixups.push((slot, FnFixup::Block(t)));
                }
            }
            MirTerm::Bc {
                cond,
                if_true,
                if_false,
            } => {
                let slot = self.out.len();
                self.push(MInst::Bc { cond, target: 0 });
                self.fixups.push((slot, FnFixup::Block(if_true)));
                let next = order.get(oi + 1).copied();
                if next == Some(if_false)
                    && next.map(|n| self.af.mir.block(n).spec_side == in_spec) == Some(true)
                {
                    // fallthrough
                } else {
                    let slot = self.out.len();
                    self.push(MInst::B { target: 0 });
                    self.fixups.push((slot, FnFixup::Block(if_false)));
                }
            }
            MirTerm::Ret(vals) => self.emit_epilogue(&vals),
        }
        // Record skeleton mirroring for everything this block emitted.
        if in_spec {
            let emitted = self.out.len() - before_block;
            let start = self.out.len() - emitted;
            for idx in start..self.out.len() {
                let h = if self.out[idx].can_misspeculate() {
                    handler
                } else {
                    None
                };
                self.spec_slots.push(h);
            }
        }
        debug_assert!(!in_spec || self.spec_slots.len() == self.out.len());
    }

    fn emit_prologue(&mut self) {
        let pushes = self.af.af_push_regs();
        if !pushes.is_empty() {
            self.push(MInst::Push { regs: pushes });
        }
        let fb = self.frame.frame_bytes();
        if fb > 0 {
            self.emit_sp_adjust(-(fb as i32));
        }
        if !self.af.mir.regions.is_empty() {
            let slot = self.out.len();
            self.push(MInst::SetDelta { bytes: 0 });
            self.delta_slots.push(slot);
        }
    }

    fn emit_epilogue(&mut self, vals: &[VReg]) {
        // Move return values into r0/r1 with clash-free ordering.
        let dsts: Vec<Reg> = (0..vals.len() as u8).map(Reg).collect();
        let mut moves: Vec<(Reg, Reg)> = Vec::new();
        for (v, d) in vals.iter().zip(&dsts) {
            match self.loc_read(*v) {
                Loc::Reg(r) => {
                    if r != *d {
                        moves.push((*d, r));
                    }
                }
                Loc::Spill(slot) => {
                    let off = self.spill_off(slot);
                    self.push(MInst::Load {
                        rd: *d,
                        rn: SP,
                        offset: off,
                        width: MemWidth::W,
                        spill: true,
                    });
                }
                Loc::Slice(_) | Loc::WriteThrough { .. } | Loc::WriteThroughSlice { .. } => {
                    panic!("unexpected return-value location")
                }
            }
        }
        self.emit_parallel_moves(&moves);
        let fb = self.frame.frame_bytes();
        if fb > 0 {
            self.emit_sp_adjust(fb as i32);
        }
        let pushes = self.af.af_push_regs();
        if !pushes.is_empty() {
            self.push(MInst::Pop { regs: pushes });
        }
        self.push(MInst::Ret);
    }

    fn emit_sp_adjust(&mut self, delta: i32) {
        let (op, amt) = if delta < 0 {
            (AluOp::Sub, (-delta) as u32)
        } else {
            (AluOp::Add, delta as u32)
        };
        if amt <= 4095 {
            self.push(MInst::Alu {
                op,
                rd: SP,
                rn: SP,
                src2: Operand::Imm(amt),
            });
        } else {
            self.push(MInst::MovImm {
                rd: Reg(12),
                imm: amt,
            });
            self.push(MInst::Alu {
                op,
                rd: SP,
                rn: SP,
                src2: Operand::Reg(Reg(12)),
            });
        }
    }

    /// Clash-free register-to-register move sequencing (r12 breaks cycles).
    fn emit_parallel_moves(&mut self, moves: &[(Reg, Reg)]) {
        let mut pending: Vec<(Reg, Reg)> = moves.iter().copied().filter(|(d, s)| d != s).collect();
        while !pending.is_empty() {
            let ready: Vec<usize> = (0..pending.len())
                .filter(|&i| !pending.iter().any(|(_, s)| *s == pending[i].0))
                .collect();
            if ready.is_empty() {
                let (d, s) = pending[0];
                self.push(MInst::Mov { rd: Reg(12), rm: s });
                pending[0] = (d, Reg(12));
                continue;
            }
            for &i in ready.iter().rev() {
                let (d, s) = pending.remove(i);
                self.push(MInst::Mov { rd: d, rm: s });
            }
        }
    }

    /// Expands a run of `GetParam` pseudos at function entry.
    fn flush_params(&mut self, run: &[(VReg, u32)]) {
        // Stack-slot params load directly; register params need ordered
        // moves (a destination may be another source's register).
        let mut reg_moves: Vec<(Reg, Reg)> = Vec::new();
        let mut wt_stores: Vec<(Reg, i32)> = Vec::new();
        for &(rd, slot) in run {
            let incoming_off =
                (self.frame.frame_bytes() + self.frame.push_bytes) as i32 + ((slot as i32) - 4) * 4;
            match self.loc(rd) {
                Loc::Reg(r) => {
                    if slot < 4 {
                        reg_moves.push((r, Reg(slot as u8)));
                    } else {
                        self.push(MInst::Load {
                            rd: r,
                            rn: SP,
                            offset: incoming_off,
                            width: MemWidth::W,
                            spill: false,
                        });
                    }
                }
                Loc::WriteThrough { reg, slot: sl } => {
                    // Register copy plus home-slot initialization (the
                    // store is deferred until after the ordered moves).
                    if slot < 4 {
                        reg_moves.push((reg, Reg(slot as u8)));
                    } else {
                        self.push(MInst::Load {
                            rd: reg,
                            rn: SP,
                            offset: incoming_off,
                            width: MemWidth::W,
                            spill: false,
                        });
                    }
                    wt_stores.push((reg, self.spill_off(sl)));
                }
                Loc::Spill(sl) => {
                    let off = self.spill_off(sl);
                    if slot < 4 {
                        self.push(MInst::Store {
                            rs: Reg(slot as u8),
                            rn: SP,
                            offset: off,
                            width: MemWidth::W,
                            spill: true,
                        });
                    } else {
                        self.push(MInst::Load {
                            rd: Reg(12),
                            rn: SP,
                            offset: incoming_off,
                            width: MemWidth::W,
                            spill: false,
                        });
                        self.push(MInst::Store {
                            rs: Reg(12),
                            rn: SP,
                            offset: off,
                            width: MemWidth::W,
                            spill: true,
                        });
                    }
                }
                Loc::Slice(_) | Loc::WriteThroughSlice { .. } => {
                    panic!("byte param read directly")
                }
            }
        }
        self.emit_parallel_moves(&reg_moves);
        for (reg, off) in wt_stores {
            self.push(MInst::Store {
                rs: reg,
                rn: SP,
                offset: off,
                width: MemWidth::W,
                spill: true,
            });
        }
    }

    // ---- operand materialization -------------------------------------------

    /// Reads a word vreg into a physical register, reloading spills into a
    /// scratch from the given pool position.
    fn read_word(&mut self, v: VReg, scratch: &mut Scratch) -> Reg {
        match self.loc(v) {
            Loc::Reg(r) => r,
            Loc::WriteThrough { reg, slot } => {
                if self.cur_spec_side {
                    reg
                } else {
                    // Cold side (handlers / CFG_orig): the register is not
                    // guaranteed; read the write-through home.
                    let r = scratch.word();
                    let off = self.spill_off(slot);
                    self.push(MInst::Load {
                        rd: r,
                        rn: SP,
                        offset: off,
                        width: MemWidth::W,
                        spill: true,
                    });
                    r
                }
            }
            Loc::Spill(slot) => {
                let r = scratch.word();
                let off = self.spill_off(slot);
                self.push(MInst::Load {
                    rd: r,
                    rn: SP,
                    offset: off,
                    width: MemWidth::W,
                    spill: true,
                });
                r
            }
            Loc::Slice(s) | Loc::WriteThroughSlice { slice: s, .. } => {
                panic!("word vreg {v:?} assigned slice {s}")
            }
        }
    }

    fn read_byte(&mut self, v: VReg, scratch: &mut Scratch) -> Slice {
        match self.loc(v) {
            Loc::Slice(s) => s,
            Loc::WriteThroughSlice { slice, slot } => {
                if self.cur_spec_side {
                    slice
                } else {
                    let r = scratch.word();
                    let off = self.spill_off(slot);
                    self.push(MInst::Load {
                        rd: r,
                        rn: SP,
                        offset: off,
                        width: MemWidth::B,
                        spill: true,
                    });
                    Slice::new(r, 0)
                }
            }
            Loc::Spill(slot) => {
                let r = scratch.word();
                let off = self.spill_off(slot);
                self.push(MInst::Load {
                    rd: r,
                    rn: SP,
                    offset: off,
                    width: MemWidth::B,
                    spill: true,
                });
                Slice::new(r, 0)
            }
            Loc::Reg(r) | Loc::WriteThrough { reg: r, .. } => {
                panic!("byte vreg {v:?} assigned word {r}")
            }
        }
    }

    /// Destination for a word def; returns (reg, spill-writeback slot).
    fn write_word(&mut self, v: VReg, scratch: &mut Scratch) -> (Reg, Option<i32>) {
        match self.loc(v) {
            Loc::Reg(r) => (r, None),
            Loc::WriteThrough { reg, slot } => {
                if self.cur_spec_side {
                    // Keep the register AND write the home slot.
                    (reg, Some(self.spill_off(slot)))
                } else {
                    (scratch.word_for_write(), Some(self.spill_off(slot)))
                }
            }
            Loc::Spill(slot) => (scratch.word_for_write(), Some(self.spill_off(slot))),
            Loc::Slice(s) | Loc::WriteThroughSlice { slice: s, .. } => {
                panic!("word def {v:?} assigned slice {s}")
            }
        }
    }

    fn write_byte(&mut self, v: VReg, scratch: &mut Scratch) -> (Slice, Option<i32>) {
        match self.loc(v) {
            Loc::Slice(s) => (s, None),
            Loc::WriteThroughSlice { slice, slot } => {
                if self.cur_spec_side {
                    (slice, Some(self.spill_off(slot)))
                } else {
                    (
                        Slice::new(scratch.word_for_write(), 0),
                        Some(self.spill_off(slot)),
                    )
                }
            }
            Loc::Spill(slot) => (
                Slice::new(scratch.word_for_write(), 0),
                Some(self.spill_off(slot)),
            ),
            Loc::Reg(r) | Loc::WriteThrough { reg: r, .. } => {
                panic!("byte def {v:?} assigned word {r}")
            }
        }
    }

    fn writeback_word(&mut self, r: Reg, off: Option<i32>) {
        if let Some(off) = off {
            self.push(MInst::Store {
                rs: r,
                rn: SP,
                offset: off,
                width: MemWidth::W,
                spill: true,
            });
        }
    }

    fn writeback_byte(&mut self, s: Slice, off: Option<i32>) {
        if let Some(off) = off {
            self.push(MInst::SStore {
                bs: s,
                rn: SP,
                offset: off,
                spill: true,
            });
        }
    }

    fn word_operand(&mut self, o: &MOperand, scratch: &mut Scratch) -> Operand {
        match o {
            MOperand::Imm(i) => Operand::Imm(*i),
            MOperand::VReg(v) => Operand::Reg(self.read_word(*v, scratch)),
        }
    }

    fn byte_operand(&mut self, o: &SMOperand, scratch: &mut Scratch) -> SliceOperand {
        match o {
            SMOperand::Imm(i) => SliceOperand::Imm(*i),
            SMOperand::VReg(v) => SliceOperand::Slice(self.read_byte(*v, scratch)),
        }
    }

    // ---- instruction expansion ----------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn emit_inst(&mut self, inst: &MirInst) {
        let mut sc = Scratch::new();
        match inst {
            MirInst::Alu { op, rd, rn, src2 } => {
                let rn = self.read_word(*rn, &mut sc);
                let src2 = self.word_operand(src2, &mut sc);
                let (rd, wb) = self.write_word(*rd, &mut sc);
                self.emit_alu(*op, rd, rn, src2);
                self.writeback_word(rd, wb);
            }
            MirInst::MovImm { rd, imm } => {
                let (rd, wb) = self.write_word(*rd, &mut sc);
                self.push(MInst::MovImm { rd, imm: *imm });
                self.writeback_word(rd, wb);
            }
            MirInst::Mov { rd, rm } => {
                let rm = self.read_word(*rm, &mut sc);
                let (rd, wb) = self.write_word(*rd, &mut sc);
                if rd != rm {
                    self.push(MInst::Mov { rd, rm });
                } else if wb.is_none() {
                    return; // coalesced
                }
                self.writeback_word(rd, wb);
            }
            MirInst::MovCc { rd, rm, cond } => {
                let rm = self.read_word(*rm, &mut sc);
                // MovCc conditionally writes rd: rd must hold its previous
                // value, so a spilled destination needs reload-modify-store.
                match self.loc(*rd) {
                    Loc::Reg(r) => self.push(MInst::MovCc {
                        rd: r,
                        rm,
                        cond: *cond,
                    }),
                    Loc::WriteThrough { reg, slot } if self.cur_spec_side => {
                        self.push(MInst::MovCc {
                            rd: reg,
                            rm,
                            cond: *cond,
                        });
                        let off = self.spill_off(slot);
                        self.push(MInst::Store {
                            rs: reg,
                            rn: SP,
                            offset: off,
                            width: MemWidth::W,
                            spill: true,
                        });
                    }
                    Loc::WriteThrough { slot, .. } => {
                        // Cold side: reload-modify-store through the slot.
                        let off = self.spill_off(slot);
                        let r = sc.word();
                        self.push(MInst::Load {
                            rd: r,
                            rn: SP,
                            offset: off,
                            width: MemWidth::W,
                            spill: true,
                        });
                        self.push(MInst::MovCc {
                            rd: r,
                            rm,
                            cond: *cond,
                        });
                        self.push(MInst::Store {
                            rs: r,
                            rn: SP,
                            offset: off,
                            width: MemWidth::W,
                            spill: true,
                        });
                    }
                    Loc::Spill(slot) => {
                        let off = self.spill_off(slot);
                        let r = sc.word();
                        self.push(MInst::Load {
                            rd: r,
                            rn: SP,
                            offset: off,
                            width: MemWidth::W,
                            spill: true,
                        });
                        self.push(MInst::MovCc {
                            rd: r,
                            rm,
                            cond: *cond,
                        });
                        self.push(MInst::Store {
                            rs: r,
                            rn: SP,
                            offset: off,
                            width: MemWidth::W,
                            spill: true,
                        });
                    }
                    Loc::Slice(_) | Loc::WriteThroughSlice { .. } => panic!("byte MovCc"),
                }
            }
            MirInst::Cmp { rn, src2 } => {
                let rn = self.read_word(*rn, &mut sc);
                let src2 = self.word_operand(src2, &mut sc);
                self.push(MInst::Cmp { rn, src2 });
            }
            MirInst::CSet { rd, cond } => {
                let (rd, wb) = self.write_word(*rd, &mut sc);
                self.push(MInst::CSet { rd, cond: *cond });
                self.writeback_word(rd, wb);
            }
            MirInst::Extend {
                rd,
                rm,
                from,
                signed,
            } => {
                let rm = self.read_word(*rm, &mut sc);
                let (rd, wb) = self.write_word(*rd, &mut sc);
                self.push(MInst::Extend {
                    rd,
                    rm,
                    from: *from,
                    signed: *signed,
                });
                self.writeback_word(rd, wb);
            }
            MirInst::Umull { rdlo, rdhi, rn, rm } => {
                let rn = self.read_word(*rn, &mut sc);
                let rm = self.read_word(*rm, &mut sc);
                let (lo, wlo) = self.write_word(*rdlo, &mut sc);
                let (hi, whi) = self.write_word(*rdhi, &mut sc);
                self.push(MInst::Umull {
                    rdlo: lo,
                    rdhi: hi,
                    rn,
                    rm,
                });
                self.writeback_word(lo, wlo);
                self.writeback_word(hi, whi);
            }
            MirInst::LoadIdx {
                rd,
                rn,
                bidx,
                shift,
                width,
            } => {
                let rn = self.read_word(*rn, &mut sc);
                let bidx = self.read_byte(*bidx, &mut sc);
                let (rd, wb) = self.write_word(*rd, &mut sc);
                self.push(MInst::LoadIdx {
                    rd,
                    rn,
                    bidx,
                    shift: *shift,
                    width: *width,
                });
                self.writeback_word(rd, wb);
            }
            MirInst::SLoadIdx {
                bd,
                rn,
                bidx,
                shift,
                speculative,
            } => {
                let rn = self.read_word(*rn, &mut sc);
                let bidx = self.read_byte(*bidx, &mut sc);
                let (bd, wb) = self.write_byte(*bd, &mut sc);
                self.push(MInst::SLoadIdx {
                    bd,
                    rn,
                    bidx,
                    shift: *shift,
                    speculative: *speculative,
                });
                self.writeback_byte(bd, wb);
            }
            MirInst::Load {
                rd,
                rn,
                offset,
                width,
            } => {
                let rn = self.read_word(*rn, &mut sc);
                let (rd, wb) = self.write_word(*rd, &mut sc);
                self.push(MInst::Load {
                    rd,
                    rn,
                    offset: *offset,
                    width: *width,
                    spill: false,
                });
                self.writeback_word(rd, wb);
            }
            MirInst::Store {
                rs,
                rn,
                offset,
                width,
            } => {
                let rs = self.read_word(*rs, &mut sc);
                let rn = self.read_word(*rn, &mut sc);
                self.push(MInst::Store {
                    rs,
                    rn,
                    offset: *offset,
                    width: *width,
                    spill: false,
                });
            }
            MirInst::GlobalAddr { rd, addr } => {
                let (rd, wb) = self.write_word(*rd, &mut sc);
                self.push(MInst::MovImm { rd, imm: *addr });
                self.writeback_word(rd, wb);
            }
            MirInst::FrameAddr { rd, alloca } => {
                let off = self.alloca_off(*alloca);
                let (rd, wb) = self.write_word(*rd, &mut sc);
                if off <= 4095 {
                    self.push(MInst::Alu {
                        op: AluOp::Add,
                        rd,
                        rn: SP,
                        src2: Operand::Imm(off as u32),
                    });
                } else {
                    self.push(MInst::MovImm {
                        rd,
                        imm: off as u32,
                    });
                    self.push(MInst::Alu {
                        op: AluOp::Add,
                        rd,
                        rn: SP,
                        src2: Operand::Reg(rd),
                    });
                }
                self.writeback_word(rd, wb);
            }
            MirInst::GetParam { .. } => unreachable!("params flushed in runs"),
            MirInst::Call { callee, args, rets } => {
                // Arguments: slots 0–3 in r0–r3, rest on the outgoing stack
                // area. Sources never live in r0–r3 (they cross the call).
                for (slot, a) in args.iter().enumerate() {
                    match self.loc_read(*a) {
                        Loc::Reg(r) => {
                            if slot < 4 {
                                if r != Reg(slot as u8) {
                                    self.push(MInst::Mov {
                                        rd: Reg(slot as u8),
                                        rm: r,
                                    });
                                }
                            } else {
                                self.push(MInst::Store {
                                    rs: r,
                                    rn: SP,
                                    offset: ((slot - 4) * 4) as i32,
                                    width: MemWidth::W,
                                    spill: false,
                                });
                            }
                        }
                        Loc::Spill(sl) => {
                            let off = self.spill_off(sl);
                            if slot < 4 {
                                self.push(MInst::Load {
                                    rd: Reg(slot as u8),
                                    rn: SP,
                                    offset: off,
                                    width: MemWidth::W,
                                    spill: true,
                                });
                            } else {
                                self.push(MInst::Load {
                                    rd: Reg(12),
                                    rn: SP,
                                    offset: off,
                                    width: MemWidth::W,
                                    spill: true,
                                });
                                self.push(MInst::Store {
                                    rs: Reg(12),
                                    rn: SP,
                                    offset: ((slot - 4) * 4) as i32,
                                    width: MemWidth::W,
                                    spill: false,
                                });
                            }
                        }
                        Loc::Slice(_)
                        | Loc::WriteThrough { .. }
                        | Loc::WriteThroughSlice { .. } => {
                            panic!("unexpected call-arg location")
                        }
                    }
                }
                let slot = self.out.len();
                self.push(MInst::Bl { target: 0 });
                self.fixups.push((slot, FnFixup::Func(*callee)));
                // Returns: ordered moves out of r0/r1.
                let mut moves: Vec<(Reg, Reg)> = Vec::new();
                let mut wt_ret_stores: Vec<(Reg, i32)> = Vec::new();
                for (i, r) in rets.iter().enumerate() {
                    match self.loc(*r) {
                        Loc::Reg(dst) => {
                            if dst != Reg(i as u8) {
                                moves.push((dst, Reg(i as u8)));
                            }
                        }
                        Loc::WriteThrough { reg, slot } => {
                            if reg != Reg(i as u8) {
                                moves.push((reg, Reg(i as u8)));
                            }
                            wt_ret_stores.push((reg, self.spill_off(slot)));
                        }
                        Loc::Spill(sl) => {
                            let off = self.spill_off(sl);
                            self.push(MInst::Store {
                                rs: Reg(i as u8),
                                rn: SP,
                                offset: off,
                                width: MemWidth::W,
                                spill: true,
                            });
                        }
                        Loc::Slice(_) | Loc::WriteThroughSlice { .. } => {
                            panic!("byte call ret")
                        }
                    }
                }
                self.emit_parallel_moves(&moves);
                for (reg, off) in wt_ret_stores {
                    self.push(MInst::Store {
                        rs: reg,
                        rn: SP,
                        offset: off,
                        width: MemWidth::W,
                        spill: true,
                    });
                }
                // Restore our Δ (the callee may have overwritten it).
                if !self.af.mir.regions.is_empty() {
                    let slot = self.out.len();
                    self.push(MInst::SetDelta { bytes: 0 });
                    self.delta_slots.push(slot);
                }
            }
            MirInst::Out { rn } => {
                let rn = self.read_word(*rn, &mut sc);
                self.push(MInst::Out { rn });
            }
            MirInst::SpecCheck { rn } => {
                let rn = self.read_word(*rn, &mut sc);
                self.push(MInst::SpecCheck { rn });
            }
            MirInst::SAlu {
                op,
                bd,
                bn,
                src2,
                speculative,
            } => {
                let bn = self.read_byte(*bn, &mut sc);
                let src2 = self.byte_operand(src2, &mut sc);
                let (bd, wb) = self.write_byte(*bd, &mut sc);
                self.push(MInst::SAlu {
                    op: *op,
                    bd,
                    bn,
                    src2,
                    speculative: *speculative,
                });
                self.writeback_byte(bd, wb);
            }
            MirInst::SCmp { bn, src2 } => {
                let bn = self.read_byte(*bn, &mut sc);
                let src2 = self.byte_operand(src2, &mut sc);
                self.push(MInst::SCmp { bn, src2 });
            }
            MirInst::SLoadSpec { bd, rn, offset } => {
                let rn = self.read_word(*rn, &mut sc);
                let (bd, wb) = self.write_byte(*bd, &mut sc);
                self.push(MInst::SLoadSpec {
                    bd,
                    rn,
                    offset: *offset,
                });
                self.writeback_byte(bd, wb);
            }
            MirInst::SLoad { bd, rn, offset } => {
                let rn = self.read_word(*rn, &mut sc);
                let (bd, wb) = self.write_byte(*bd, &mut sc);
                self.push(MInst::SLoad {
                    bd,
                    rn,
                    offset: *offset,
                    spill: false,
                });
                self.writeback_byte(bd, wb);
            }
            MirInst::SStore { bs, rn, offset } => {
                let bs = self.read_byte(*bs, &mut sc);
                let rn = self.read_word(*rn, &mut sc);
                self.push(MInst::SStore {
                    bs,
                    rn,
                    offset: *offset,
                    spill: false,
                });
            }
            MirInst::SExtend { rd, bn, signed } => {
                let bn = self.read_byte(*bn, &mut sc);
                let (rd, wb) = self.write_word(*rd, &mut sc);
                self.push(MInst::SExtend {
                    rd,
                    bn,
                    signed: *signed,
                });
                self.writeback_word(rd, wb);
            }
            MirInst::STrunc {
                bd,
                rn,
                speculative,
            } => {
                let rn = self.read_word(*rn, &mut sc);
                let (bd, wb) = self.write_byte(*bd, &mut sc);
                self.push(MInst::STrunc {
                    bd,
                    rn,
                    speculative: *speculative,
                });
                self.writeback_byte(bd, wb);
            }
            MirInst::SMov { bd, bs } => {
                let bs = self.read_byte(*bs, &mut sc);
                let (bd, wb) = self.write_byte(*bd, &mut sc);
                if bd != bs {
                    self.push(MInst::SMov { bd, bs });
                } else if wb.is_none() {
                    return;
                }
                self.writeback_byte(bd, wb);
            }
            MirInst::SMovImm { bd, imm } => {
                let (bd, wb) = self.write_byte(*bd, &mut sc);
                self.push(MInst::SMovImm { bd, imm: *imm });
                self.writeback_byte(bd, wb);
            }
        }
    }

    /// Emits a word ALU op, applying compact-mode 2-address fixups.
    fn emit_alu(&mut self, op: AluOp, rd: Reg, rn: Reg, src2: Operand) {
        if !self.opts.compact || rd == rn {
            self.push(MInst::Alu { op, rd, rn, src2 });
            return;
        }
        // Thumb-like: rd must equal rn.
        let commutative = matches!(
            op,
            AluOp::Add | AluOp::And | AluOp::Orr | AluOp::Eor | AluOp::Mul
        );
        match src2 {
            Operand::Reg(r2) if r2 == rd => {
                if commutative {
                    // rd := r2 op rn  ≡  rd := rd op rn
                    self.push(MInst::Alu {
                        op,
                        rd,
                        rn: rd,
                        src2: Operand::Reg(rn),
                    });
                } else {
                    self.push(MInst::Mov {
                        rd: Reg(12),
                        rm: r2,
                    });
                    self.push(MInst::Mov { rd, rm: rn });
                    self.push(MInst::Alu {
                        op,
                        rd,
                        rn: rd,
                        src2: Operand::Reg(Reg(12)),
                    });
                }
            }
            _ => {
                self.push(MInst::Mov { rd, rm: rn });
                self.push(MInst::Alu {
                    op,
                    rd,
                    rn: rd,
                    src2,
                });
            }
        }
    }
}

impl AllocatedFn {
    /// Registers saved in the prologue: used callee-saved plus `lr` when
    /// the function calls.
    fn af_push_regs(&self) -> Vec<Reg> {
        let mut regs = self.used_callee_saved.clone();
        if self.has_calls {
            regs.push(LR);
        }
        regs
    }
}

/// Per-instruction scratch register allocator (r11 and r12 are reserved by
/// the register allocator for this purpose).
struct Scratch {
    next_read: usize,
    next_write: usize,
}

impl Scratch {
    fn new() -> Scratch {
        Scratch {
            next_read: 0,
            next_write: 0,
        }
    }

    /// Scratch for a source reload. Distinct across reads of one inst.
    fn word(&mut self) -> Reg {
        let r = match self.next_read {
            0 => Reg(11),
            1 => Reg(12),
            _ => panic!("out of scratch registers in one instruction"),
        };
        self.next_read += 1;
        r
    }

    /// Scratch for a destination. May alias a read scratch: every machine
    /// instruction reads all sources before writing its destination(s).
    fn word_for_write(&mut self) -> Reg {
        let r = match self.next_write {
            0 => Reg(11),
            1 => Reg(12),
            _ => panic!("out of write scratch registers in one instruction"),
        };
        self.next_write += 1;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_module;

    fn program_for(src: &str, opts: &CodegenOpts) -> Program {
        let m = lang::compile("t", src).unwrap();
        compile_module(&m, opts)
    }

    #[test]
    fn links_and_addresses_are_monotone() {
        let p = program_for(
            "u32 g(u32 x) { return x * 2; } void main() { out(g(21)); }",
            &CodegenOpts::default(),
        );
        assert!(p.insts.len() > 5);
        for w in p.addrs.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(matches!(p.insts[p.halt], MInst::Halt));
        assert_eq!(p.addr_index[&p.addrs[p.entry]], p.entry);
    }

    #[test]
    fn branch_targets_resolved() {
        let p = program_for(
            "void main() { u32 s = 0; for (u32 i = 0; i < 5; i++) { s += i; } out(s); }",
            &CodegenOpts::default(),
        );
        for i in &p.insts {
            match i {
                MInst::B { target } | MInst::Bc { target, .. } | MInst::Bl { target } => {
                    assert!(*target < p.insts.len(), "dangling branch target");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn compact_mode_doubles_density() {
        let src = "void main() { out(1 + 2); }";
        let normal = program_for(src, &CodegenOpts::default());
        let compact = program_for(
            src,
            &CodegenOpts {
                bitspec: false,
                compact: true,
                spill_prefer_orig: true,
            },
        );
        // Compact instructions are 2 bytes.
        let first_size = compact.insts[0].size(true);
        assert!(first_size == 2 || first_size == 4);
        let _ = normal;
    }
}
