//! Slice-aware register allocation (§3.3.3).
//!
//! A greedy scan over *segmented live ranges* (lifetime holes included):
//! each virtual register's lifetime is a set of disjoint position
//! intervals — one per block where it is live, bounded inside the block by
//! its first/last definition or use. Liveness flows across misspeculation
//! edges (equation 2), so anything a handler reads stays live through its
//! whole region and the handler always finds its inputs intact.
//!
//! Word virtual registers claim all four slices of a physical register;
//! byte virtual registers claim one slice — several byte values *pack*
//! into one register, which is BITSPEC's register-file win. Values live
//! across a call are restricted to callee-saved registers (`r4–r10`).
//! Spills use a spill-everywhere scheme materialized at emission, tagged
//! for the Figure 10 accounting.
//!
//! The paper's RQ5 branch-weight heuristic maps onto *allocation order*:
//! with `spill_prefer_orig` (the default) `CFG_spec` values allocate first
//! and therefore spill last — the "handlers are almost never entered"
//! assumption. Inverting the flag prioritizes `CFG_orig`.

use crate::isel::CodegenOpts;
use crate::mir::{MBlockId, MirFunction, MirInst, RegClass, VReg};
use isa::Reg;
use std::collections::HashSet;

/// Where a virtual register ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// A whole physical register (word class).
    Reg(Reg),
    /// A byte slice of a physical register (byte class).
    Slice(isa::Slice),
    /// A frame spill slot (index; 4 bytes each).
    Spill(u32),
    /// *Write-through homing*: the value lives in a register on the hot
    /// speculative path, but every definition also stores to a frame slot,
    /// which misspeculation handlers (and `CFG_orig`) read. This is the
    /// spill-everywhere analogue of the paper's low-handler-branch-weight
    /// trick: spill traffic sinks to the cold side.
    WriteThrough { reg: Reg, slot: u32 },
    /// Write-through homing for a byte (slice) value.
    WriteThroughSlice { slice: isa::Slice, slot: u32 },
}

/// Allocation result consumed by the emitter.
#[derive(Debug, Clone)]
pub struct AllocatedFn {
    pub mir: MirFunction,
    /// Location per vreg (indexed by vreg number).
    pub locs: Vec<Loc>,
    /// Number of spill slots used.
    pub spill_slots: u32,
    /// Callee-saved registers written by this function.
    pub used_callee_saved: Vec<Reg>,
    /// Whether the function makes calls (needs lr saved).
    pub has_calls: bool,
    /// Final block layout order (spec segment first).
    pub order: Vec<MBlockId>,
}

const CALLER_SAVED: [Reg; 4] = [Reg(0), Reg(1), Reg(2), Reg(3)];
const CALLEE_SAVED: [Reg; 7] = [Reg(4), Reg(5), Reg(6), Reg(7), Reg(8), Reg(9), Reg(10)];
/// Compact (Thumb-like) mode: only r0–r7 are generally usable.
const CALLEE_SAVED_COMPACT: [Reg; 4] = [Reg(4), Reg(5), Reg(6), Reg(7)];

/// Disjoint, sorted position intervals.
type Segments = Vec<(u32, u32)>;

/// An interval map per register slice: `(start, end, owning vreg)` kept
/// sorted by start. Intervals within one slice are disjoint (a slice only
/// ever hosts non-conflicting vregs), so overlap tests are one binary
/// search + one predecessor check per query segment.
#[derive(Debug, Clone, Default)]
struct SliceOccupancy {
    ivals: Vec<(u32, u32, u32)>,
}

impl SliceOccupancy {
    fn conflicts(&self, segs: &Segments) -> bool {
        for &(s, e) in segs {
            // Any existing interval with start < e whose end > s overlaps.
            let i = self.ivals.partition_point(|&(st, _, _)| st < e);
            if i > 0 && self.ivals[i - 1].1 > s {
                return true;
            }
        }
        false
    }

    fn insert(&mut self, segs: &Segments, owner: u32) {
        for &(s, e) in segs {
            let i = self.ivals.partition_point(|&(st, _, _)| st < s);
            self.ivals.insert(i, (s, e, owner));
        }
    }
}

/// Runs the allocator over a MIR function.
pub fn allocate(mir: MirFunction, opts: &CodegenOpts) -> AllocatedFn {
    let order = layout_order(&mir);
    let n = mir.classes.len();
    let lv = build_ranges(&mir, &order, true);
    // Handler-edge-free ranges for the write-through fallback.
    let lv_plain = if mir.regions.is_empty() {
        None
    } else {
        Some(build_ranges(&mir, &order, false))
    };

    let callee: &[Reg] = if opts.compact {
        &CALLEE_SAVED_COMPACT
    } else {
        &CALLEE_SAVED
    };
    let caller: &[Reg] = &CALLER_SAVED;

    // Allocation order: the prioritized side first (RQ5 heuristic); within
    // a side, values *without* handler-edge range extensions first — they
    // have no write-through fallback, so they must win pure registers —
    // then by range start.
    let handler_extended: Vec<bool> = (0..n)
        .map(|v| {
            lv_plain
                .as_ref()
                .map(|p| p.segs[v] != lv.segs[v])
                .unwrap_or(false)
        })
        .collect();
    let mut vregs: Vec<usize> = (0..n).filter(|v| !lv.segs[*v].is_empty()).collect();
    vregs.sort_by_key(|&v| {
        let spec = lv.def_side[v];
        let prioritized = spec == opts.spill_prefer_orig; // prefer_orig ⇒ spec first
        (!prioritized, handler_extended[v], lv.segs[v][0].0)
    });

    let mut occupancy: Vec<[SliceOccupancy; 4]> = (0..16)
        .map(|_| std::array::from_fn(|_| SliceOccupancy::default()))
        .collect();
    let mut hosts_bytes = [false; 16];
    let mut locs: Vec<Loc> = vec![Loc::Spill(u32::MAX); n];
    let mut next_spill = 0u32;
    let mut used_callee: HashSet<Reg> = HashSet::new();

    // Claims `loc` for `v` in the occupancy tables.
    macro_rules! claim {
        ($v:expr, $loc:expr, $segs:expr) => {{
            let loc = $loc;
            let (r, slice_list): (Reg, Vec<usize>) = match loc {
                Loc::Reg(r) | Loc::WriteThrough { reg: r, .. } => (r, vec![0, 1, 2, 3]),
                Loc::Slice(sl) | Loc::WriteThroughSlice { slice: sl, .. } => {
                    hosts_bytes[sl.reg.index()] = true;
                    (sl.reg, vec![sl.byte as usize])
                }
                Loc::Spill(_) => unreachable!(),
            };
            for sidx in slice_list {
                occupancy[r.index()][sidx].insert($segs, $v as u32);
            }
            if callee.contains(&r) {
                used_callee.insert(r);
            }
            locs[$v] = loc;
        }};
    }

    // Finds a free register/slice for `segs` in `pool`.
    let find_free = |occupancy: &Vec<[SliceOccupancy; 4]>,
                     hosts_bytes: &[bool; 16],
                     class: RegClass,
                     pool: &[Reg],
                     segs: &Segments|
     -> Option<Loc> {
        match class {
            RegClass::Word => pool
                .iter()
                .find(|r| (0..4).all(|s| !occupancy[r.index()][s].conflicts(segs)))
                .map(|r| Loc::Reg(*r)),
            RegClass::Byte => {
                let mut best: Option<(u32, Reg, u8)> = None;
                for &r in pool {
                    for sl in 0..4u8 {
                        if occupancy[r.index()][sl as usize].conflicts(segs) {
                            continue;
                        }
                        let score = u32::from(hosts_bytes[r.index()]) * 10 + (4 - u32::from(sl));
                        if best.map(|(b, _, _)| score > b).unwrap_or(true) {
                            best = Some((score, r, sl));
                        }
                        break;
                    }
                }
                best.map(|(_, r, sl)| Loc::Slice(isa::Slice::new(r, sl)))
            }
        }
    };

    for &v in &vregs {
        let segs = lv.segs[v].clone();
        // "Crossing" includes being *used by* the call (s < c, e == c+1):
        // argument marshalling writes r0–r3, so argument sources must live
        // elsewhere. Return-value vregs (s == c) are exempt.
        let needs_callee = lv
            .call_positions
            .iter()
            .any(|&c| segs.iter().any(|&(s, e)| s < c && e > c));
        let pool: Vec<Reg> = if needs_callee {
            callee.to_vec()
        } else {
            let mut p = caller.to_vec();
            p.extend_from_slice(callee);
            p
        };
        let class = mir.classes[v];
        if let Some(loc) = find_free(&occupancy, &hosts_bytes, class, &pool, &segs) {
            claim!(v, loc, &segs);
            continue;
        }
        // No register: write-through on the handler-edge-free range, else
        // spill.
        rehome(
            v,
            &mir,
            &lv,
            lv_plain.as_ref(),
            callee,
            caller,
            &mut occupancy,
            &mut hosts_bytes,
            &mut locs,
            &mut next_spill,
            &mut used_callee,
        );
    }
    let has_calls = mir
        .blocks
        .iter()
        .any(|b| b.insts.iter().any(MirInst::is_call));
    let mut used_callee_saved: Vec<Reg> = used_callee.into_iter().collect();
    used_callee_saved.sort();
    AllocatedFn {
        mir,
        locs,
        spill_slots: next_spill,
        used_callee_saved,
        has_calls,
        order,
    }
}

/// Checks the invariants the emitter relies on, returning the first
/// violation:
///
/// * every live vreg has a location, of its register class;
/// * no two vregs with overlapping live ranges occupy the same register
///   slice (a word location claims all four slices; write-through homing
///   claims its register only on the handler-edge-free range — handlers
///   read the frame slot);
/// * frame slots are pairwise disjoint and within `spill_slots`.
///
/// The fuzz subsystem's property tests drive this over generated programs.
///
/// # Errors
/// Returns a description of the violated invariant.
pub fn validate(a: &AllocatedFn) -> Result<(), String> {
    let lv = build_ranges(&a.mir, &a.order, true);
    let lv_plain = if a.mir.regions.is_empty() {
        None
    } else {
        Some(build_ranges(&a.mir, &a.order, false))
    };
    let n = a.mir.classes.len();

    // The position range a vreg's *register* is claimed on, and which
    // slices of which register it occupies (None = frame only).
    let reg_claim = |v: usize| -> Option<(Reg, [bool; 4], &Segments)> {
        let full = &lv.segs[v];
        let plain = lv_plain.as_ref().map(|p| &p.segs[v]).unwrap_or(full);
        match a.locs[v] {
            Loc::Reg(r) => Some((r, [true; 4], full)),
            Loc::WriteThrough { reg, .. } => Some((reg, [true; 4], plain)),
            Loc::Slice(sl) => {
                let mut m = [false; 4];
                m[sl.byte as usize] = true;
                Some((sl.reg, m, full))
            }
            Loc::WriteThroughSlice { slice, .. } => {
                let mut m = [false; 4];
                m[slice.byte as usize] = true;
                Some((slice.reg, m, plain))
            }
            Loc::Spill(_) => None,
        }
    };

    let mut slots: Vec<(u32, usize)> = Vec::new();
    for v in 0..n {
        if lv.segs[v].is_empty() {
            continue; // never referenced; location is meaningless
        }
        match (a.mir.classes[v], a.locs[v]) {
            (RegClass::Word, Loc::Slice(_) | Loc::WriteThroughSlice { .. }) => {
                return Err(format!(
                    "word vreg v{v} assigned byte slice {:?}",
                    a.locs[v]
                ));
            }
            (RegClass::Byte, Loc::Reg(_) | Loc::WriteThrough { .. }) => {
                return Err(format!(
                    "byte vreg v{v} assigned whole register {:?}",
                    a.locs[v]
                ));
            }
            _ => {}
        }
        match a.locs[v] {
            Loc::Spill(u32::MAX) => return Err(format!("live vreg v{v} left unallocated")),
            Loc::Spill(s) => slots.push((s, v)),
            Loc::WriteThrough { slot, .. } | Loc::WriteThroughSlice { slot, .. } => {
                slots.push((slot, v));
            }
            _ => {}
        }
    }

    slots.sort_unstable();
    for w in slots.windows(2) {
        if w[0].0 == w[1].0 {
            return Err(format!(
                "vregs v{} and v{} share frame slot {}",
                w[0].1, w[1].1, w[0].0
            ));
        }
    }
    if let Some(&(s, v)) = slots.last() {
        if s >= a.spill_slots {
            return Err(format!(
                "vreg v{v} uses slot {s} but only {} slots reserved",
                a.spill_slots
            ));
        }
    }

    let overlap = |x: &Segments, y: &Segments| {
        x.iter()
            .any(|&(s1, e1)| y.iter().any(|&(s2, e2)| s1 < e2 && s2 < e1))
    };
    for x in 0..n {
        let Some((rx, mx, sx)) = reg_claim(x) else {
            continue;
        };
        for y in (x + 1)..n {
            let Some((ry, my, sy)) = reg_claim(y) else {
                continue;
            };
            if rx != ry || !(0..4).any(|i| mx[i] && my[i]) {
                continue;
            }
            if overlap(sx, sy) {
                return Err(format!(
                    "vregs v{x} ({:?}) and v{y} ({:?}) overlap in {rx:?}",
                    a.locs[x], a.locs[y]
                ));
            }
        }
    }
    Ok(())
}

/// Block layout order: the spec side (entry first) in RPO, then `CFG_orig`
/// and handlers. The spec segment must be contiguous for the Δ skeleton
/// mechanism (§3.3.4).
pub fn layout_order(mir: &MirFunction) -> Vec<MBlockId> {
    let rpo = mir_rpo(mir);
    let mut order: Vec<MBlockId> = Vec::new();
    for &b in &rpo {
        if mir.block(b).spec_side {
            order.push(b);
        }
    }
    for &b in &rpo {
        if !mir.block(b).spec_side {
            order.push(b);
        }
    }
    let mut placed = vec![false; mir.blocks.len()];
    for &b in &order {
        placed[b.index()] = true;
    }
    for b in mir.block_ids() {
        if !placed[b.index()] {
            order.push(b);
        }
    }
    order
}

fn mir_rpo(mir: &MirFunction) -> Vec<MBlockId> {
    let n = mir.blocks.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    let mut stack = vec![(mir.entry, 0usize)];
    visited[mir.entry.index()] = true;
    while let Some((b, i)) = stack.pop() {
        let succs = mir.spec_succs(b);
        if i < succs.len() {
            stack.push((b, i + 1));
            let s = succs[i];
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
        }
    }
    post.reverse();
    post
}

struct LiveRanges {
    /// Disjoint position segments per vreg.
    segs: Vec<Segments>,
    /// Whether the vreg is defined on the spec side.
    def_side: Vec<bool>,
    /// Linear positions of calls.
    call_positions: Vec<u32>,
}

/// Places `v` without evicting: tries a pure register on its full range,
/// then write-through homing on its handler-edge-free range, then a spill
/// slot.
#[allow(clippy::too_many_arguments)]
fn rehome(
    v: usize,
    mir: &MirFunction,
    lv: &LiveRanges,
    lv_plain: Option<&LiveRanges>,
    callee: &[Reg],
    caller: &[Reg],
    occupancy: &mut [[SliceOccupancy; 4]],
    hosts_bytes: &mut [bool; 16],
    locs: &mut [Loc],
    next_spill: &mut u32,
    used_callee: &mut HashSet<Reg>,
) {
    let class = mir.classes[v];
    let segs = &lv.segs[v];
    let needs_callee = lv
        .call_positions
        .iter()
        .any(|&c| segs.iter().any(|&(s, e)| s < c && e > c));
    let pool: Vec<Reg> = if needs_callee {
        callee.to_vec()
    } else {
        let mut p = caller.to_vec();
        p.extend_from_slice(callee);
        p
    };
    let try_place = |segs: &Segments,
                     wt: bool,
                     occupancy: &mut [[SliceOccupancy; 4]],
                     hosts_bytes: &mut [bool; 16],
                     next_spill: &mut u32|
     -> Option<Loc> {
        match class {
            RegClass::Word => {
                for &r in &pool {
                    if (0..4).all(|s| !occupancy[r.index()][s].conflicts(segs)) {
                        let loc = if wt {
                            let slot = *next_spill;
                            *next_spill += 1;
                            Loc::WriteThrough { reg: r, slot }
                        } else {
                            Loc::Reg(r)
                        };
                        for slice_occ in &mut occupancy[r.index()] {
                            slice_occ.insert(segs, v as u32);
                        }
                        return Some(loc);
                    }
                }
                None
            }
            RegClass::Byte => {
                for &r in &pool {
                    for sl in 0..4u8 {
                        if occupancy[r.index()][sl as usize].conflicts(segs) {
                            continue;
                        }
                        let loc = if wt {
                            let slot = *next_spill;
                            *next_spill += 1;
                            Loc::WriteThroughSlice {
                                slice: isa::Slice::new(r, sl),
                                slot,
                            }
                        } else {
                            Loc::Slice(isa::Slice::new(r, sl))
                        };
                        occupancy[r.index()][sl as usize].insert(segs, v as u32);
                        hosts_bytes[r.index()] = true;
                        return Some(loc);
                    }
                }
                None
            }
        }
    };
    let placed = try_place(segs, false, occupancy, hosts_bytes, next_spill).or_else(|| {
        lv_plain.and_then(|p| {
            let psegs = &p.segs[v];
            if psegs.is_empty() || psegs == segs {
                None
            } else {
                try_place(psegs, true, occupancy, hosts_bytes, next_spill)
            }
        })
    });
    match placed {
        Some(loc) => {
            if let Loc::Reg(r)
            | Loc::WriteThrough { reg: r, .. }
            | Loc::Slice(isa::Slice { reg: r, .. })
            | Loc::WriteThroughSlice {
                slice: isa::Slice { reg: r, .. },
                ..
            } = loc
            {
                if callee.contains(&r) {
                    used_callee.insert(r);
                }
            }
            locs[v] = loc;
        }
        None => {
            locs[v] = Loc::Spill(*next_spill);
            *next_spill += 1;
        }
    }
}

fn succs_of(mir: &MirFunction, b: MBlockId, with_handler_edges: bool) -> Vec<MBlockId> {
    if with_handler_edges {
        mir.spec_succs(b)
    } else {
        mir.block(b).term.successors()
    }
}

/// Builds per-vreg segmented live ranges over the layout order.
/// `with_handler_edges` selects equation-2 semantics (region block →
/// handler) or plain branch liveness (the write-through fallback).
fn build_ranges(mir: &MirFunction, order: &[MBlockId], with_handler_edges: bool) -> LiveRanges {
    let n = mir.classes.len();
    let nb = mir.blocks.len();
    // Block-level liveness over branch + misspeculation edges, as word-packed
    // bitsets over vreg indices (`nw` words per block-level set).
    let nw = n.div_ceil(64);
    let set = |s: &mut [u64], i: usize| s[i >> 6] |= 1u64 << (i & 63);
    let get = |s: &[u64], i: usize| s[i >> 6] >> (i & 63) & 1 != 0;
    let mut uevar: Vec<u64> = vec![0; nb * nw];
    let mut defs: Vec<u64> = vec![0; nb * nw];
    let mut def_side = vec![true; n];
    for b in mir.block_ids() {
        let row = b.index() * nw;
        for i in &mir.block(b).insts {
            for u in i.uses() {
                if !get(&defs[row..row + nw], u.index()) {
                    set(&mut uevar[row..row + nw], u.index());
                }
            }
            for d in i.defs() {
                set(&mut defs[row..row + nw], d.index());
                def_side[d.index()] = mir.block(b).spec_side;
            }
        }
        for u in mir.block(b).term.uses() {
            if !get(&defs[row..row + nw], u.index()) {
                set(&mut uevar[row..row + nw], u.index());
            }
        }
    }
    // Successor index lists once, instead of a Vec allocation per visit.
    let succs: Vec<Vec<usize>> = (0..nb)
        .map(|bi| {
            succs_of(mir, MBlockId(bi as u32), with_handler_edges)
                .into_iter()
                .map(|s| s.index())
                .collect()
        })
        .collect();
    // Sweep order for the backward fixpoint: CFG postorder (successors
    // before predecessors), so each pass propagates liveness across whole
    // forward chains. Squeezed functions append `CFG_orig` and handler
    // blocks after the spec side, so raw descending block index needs many
    // more passes. Unreachable blocks settle in any order; keep index order.
    // Components not reachable from the entry (e.g. `CFG_orig` when handler
    // edges are excluded) get their own DFS, so they too sweep in postorder.
    let mut sweep: Vec<usize> = Vec::with_capacity(nb);
    {
        let mut state = vec![0u8; nb]; // 0 unvisited, 1 visited
        let mut stack: Vec<(usize, usize)> = Vec::new();
        let entry = mir.entry.index();
        for root in std::iter::once(entry).chain(0..nb) {
            if state[root] != 0 {
                continue;
            }
            state[root] = 1;
            stack.push((root, 0));
            while let Some(top) = stack.last_mut() {
                let u = top.0;
                if top.1 < succs[u].len() {
                    let s = succs[u][top.1];
                    top.1 += 1;
                    if state[s] == 0 {
                        state[s] = 1;
                        stack.push((s, 0));
                    }
                } else {
                    stack.pop();
                    sweep.push(u);
                }
            }
        }
    }
    let mut live_in: Vec<u64> = vec![0; nb * nw];
    let mut live_out: Vec<u64> = vec![0; nb * nw];
    let mut out: Vec<u64> = vec![0; nw];
    let mut changed = true;
    while changed {
        changed = false;
        for &bi in &sweep {
            let row = bi * nw;
            out.fill(0);
            for &s in &succs[bi] {
                for (o, w) in out.iter_mut().zip(&live_in[s * nw..s * nw + nw]) {
                    *o |= w;
                }
            }
            for wi in 0..nw {
                let inn = uevar[row + wi] | (out[wi] & !defs[row + wi]);
                if out[wi] != live_out[row + wi] {
                    live_out[row + wi] = out[wi];
                    changed = true;
                }
                if inn != live_in[row + wi] {
                    live_in[row + wi] = inn;
                    changed = true;
                }
            }
        }
    }
    // Per-block segments with intra-block precision: [first event, last
    // event], stretched to the block boundary on the live-in / live-out
    // side.
    let mut segs: Vec<Segments> = vec![Vec::new(); n];
    let mut call_positions = Vec::new();
    let mut first_ev: Vec<u32> = vec![u32::MAX; n];
    let mut last_ev: Vec<u32> = vec![0; n];
    let mut pos: u32 = 0;
    for &b in order {
        let bi = b.index();
        let bstart = pos;
        let mut touched: Vec<usize> = Vec::new();
        let touch = |v: VReg,
                     p: u32,
                     first_ev: &mut Vec<u32>,
                     last_ev: &mut Vec<u32>,
                     touched: &mut Vec<usize>| {
            let i = v.index();
            if first_ev[i] == u32::MAX {
                touched.push(i);
                first_ev[i] = p;
            }
            last_ev[i] = last_ev[i].max(p + 1);
        };
        for inst in &mir.block(b).insts {
            pos += 1;
            if inst.is_call() {
                call_positions.push(pos);
            }
            for u in inst.uses() {
                touch(u, pos, &mut first_ev, &mut last_ev, &mut touched);
            }
            for d in inst.defs() {
                touch(d, pos, &mut first_ev, &mut last_ev, &mut touched);
            }
        }
        pos += 1; // terminator position
        for u in mir.block(b).term.uses() {
            touch(u, pos, &mut first_ev, &mut last_ev, &mut touched);
        }
        let bend = pos + 1;
        let row = bi * nw;
        // Emit a segment for every vreg live in this block.
        for &vi in &touched {
            let s = if get(&live_in[row..row + nw], vi) {
                bstart
            } else {
                first_ev[vi]
            };
            let e = if get(&live_out[row..row + nw], vi) {
                bend
            } else {
                last_ev[vi]
            };
            segs[vi].push((s, e.max(s + 1)));
            first_ev[vi] = u32::MAX;
            last_ev[vi] = 0;
        }
        // Live-through values with no local event.
        for wi in 0..nw {
            let mut word = live_in[row + wi] & live_out[row + wi];
            while word != 0 {
                let vi = wi * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                // (events were reset above; untouched live-through values
                // still have MAX)
                if first_ev[vi] == u32::MAX {
                    let already = segs[vi].last().map(|&(_, e)| e >= bend).unwrap_or(false);
                    if !already {
                        segs[vi].push((bstart, bend));
                    }
                }
            }
        }
        pos += 1;
    }
    // Normalize: sort and merge adjacent/overlapping segments.
    for s in &mut segs {
        s.sort_unstable();
        let mut merged: Segments = Vec::with_capacity(s.len());
        for &(a, b) in s.iter() {
            if let Some(last) = merged.last_mut() {
                if a <= last.1 {
                    last.1 = last.1.max(b);
                    continue;
                }
            }
            merged.push((a, b));
        }
        *s = merged;
    }
    LiveRanges {
        segs,
        def_side,
        call_positions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp::Layout;

    fn alloc_for(src: &str, func: &str) -> AllocatedFn {
        let m = lang::compile("t", src).unwrap();
        let fid = m.func_by_name(func).unwrap();
        let layout = Layout::new(&m);
        let opts = CodegenOpts::default();
        let mir = crate::isel::select_function(&m, fid, &layout, &opts);
        allocate(mir, &opts)
    }

    #[test]
    fn small_function_spills_nothing() {
        let a = alloc_for("u32 f(u32 a, u32 b) { return a + b * 2; }", "f");
        assert_eq!(a.spill_slots, 0);
        for b in a.mir.block_ids() {
            for i in &a.mir.block(b).insts {
                for v in i.uses().into_iter().chain(i.defs()) {
                    assert_ne!(a.locs[v.index()], Loc::Spill(u32::MAX), "{v:?} unallocated");
                }
            }
        }
    }

    #[test]
    fn straightline_temps_reuse_registers() {
        // 30 short-lived temps in one block must not spill: sub-block
        // precision lets them share registers.
        let mut body = String::new();
        body.push_str("u32 s = 0;\n");
        for i in 0..30 {
            body.push_str(&format!("s = s + a * {};\n", i + 2));
        }
        body.push_str("return s;");
        let src = format!("u32 f(u32 a) {{ {body} }}");
        let a = alloc_for(&src, "f");
        assert_eq!(a.spill_slots, 0, "chained temps must reuse registers");
    }

    #[test]
    fn no_overlapping_assignments() {
        let src = "u32 f(u32 a, u32 b, u32 c, u32 d) {
            u32 e = a + b; u32 g = c + d; u32 h = a * c; u32 i = b * d;
            u32 j = e + g; u32 k = h + i;
            return j * k + e + g + h + i;
        }";
        let a = alloc_for(src, "f");
        let order = a.order.clone();
        let lv = super::build_ranges(&a.mir, &order, true);
        let overlap = |x: &Segments, y: &Segments| {
            x.iter()
                .any(|&(s1, e1)| y.iter().any(|&(s2, e2)| s1 < e2 && s2 < e1))
        };
        let n = a.mir.classes.len();
        for x in 0..n {
            for y in (x + 1)..n {
                if lv.segs[x].is_empty() || lv.segs[y].is_empty() {
                    continue;
                }
                if !overlap(&lv.segs[x], &lv.segs[y]) {
                    continue;
                }
                let conflict = match (a.locs[x], a.locs[y]) {
                    (Loc::Reg(r1), Loc::Reg(r2)) => r1 == r2,
                    (Loc::Reg(r), Loc::Slice(s)) | (Loc::Slice(s), Loc::Reg(r)) => s.reg == r,
                    (Loc::Slice(s1), Loc::Slice(s2)) => s1 == s2,
                    _ => false,
                };
                assert!(
                    !conflict,
                    "live-overlapping vregs v{x} and v{y} share {:?}",
                    a.locs[x]
                );
            }
        }
    }

    #[test]
    fn values_across_calls_use_callee_saved() {
        let src = "
            u32 g(u32 x) { return x + 1; }
            u32 f(u32 a) { u32 keep = a * 3; u32 r = g(a); return keep + r; }
        ";
        let a = alloc_for(src, "f");
        assert!(a.has_calls);
        assert!(
            !a.used_callee_saved.is_empty(),
            "value live across call needs callee-saved"
        );
    }

    #[test]
    fn high_pressure_spills() {
        let mut body = String::new();
        for i in 0..16 {
            body.push_str(&format!("u32 x{i} = a * {};\n", i + 3));
        }
        body.push_str("return ");
        for i in 0..16 {
            if i > 0 {
                body.push('+');
            }
            body.push_str(&format!("x{i}*x{i}"));
        }
        body.push(';');
        let src = format!("u32 f(u32 a) {{ {body} }}");
        let a = alloc_for(&src, "f");
        assert!(a.spill_slots > 0, "16 overlapping live words must spill");
    }

    #[test]
    fn layout_keeps_spec_segment_first() {
        let a = alloc_for("u32 f(u32 a) { return a + 1; }", "f");
        let mut seen_nonspec = false;
        for &b in &a.order {
            let spec = a.mir.block(b).spec_side;
            if !spec {
                seen_nonspec = true;
            }
            if spec {
                assert!(!seen_nonspec, "spec block after non-spec in layout");
            }
        }
    }

    #[test]
    fn slice_occupancy_conflicts() {
        let mut o = SliceOccupancy::default();
        o.insert(&vec![(10, 20), (30, 40)], 1);
        assert!(o.conflicts(&vec![(15, 17)]));
        assert!(o.conflicts(&vec![(5, 11)]));
        assert!(o.conflicts(&vec![(39, 50)]));
        assert!(!o.conflicts(&vec![(20, 30)]));
        assert!(!o.conflicts(&vec![(40, 100)]));
        assert!(!o.conflicts(&vec![(0, 10)]));
    }
}
