//! Machine IR over virtual registers (the paper's SMIR, §3.1.3).

use isa::{AluOp, Cond, MemWidth};
use sir::FuncId;

/// A virtual register. Class is tracked per-function in [`MirFunction`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(pub u32);

impl VReg {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for VReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Register class: a full 32-bit word or an 8-bit slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegClass {
    Word,
    Byte,
}

/// Slice ALU ops (re-exported naming for MIR convenience).
pub use isa::inst::SAluOp;

/// Word-op second operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MOperand {
    VReg(VReg),
    Imm(u32),
}

/// Slice-op second operand (Table 1 allows a 4-bit immediate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SMOperand {
    VReg(VReg),
    Imm(u8),
}

/// MIR block id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MBlockId(pub u32);

impl MBlockId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for MBlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mb{}", self.0)
    }
}

/// MIR instructions (virtual-register forms of [`isa::MInst`] plus
/// call/frame/param pseudos expanded at emission).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MirInst {
    Alu {
        op: AluOp,
        rd: VReg,
        rn: VReg,
        src2: MOperand,
    },
    MovImm {
        rd: VReg,
        imm: u32,
    },
    Mov {
        rd: VReg,
        rm: VReg,
    },
    /// `rd := rm` when the current flags satisfy `cond` (select lowering).
    MovCc {
        rd: VReg,
        rm: VReg,
        cond: Cond,
    },
    Cmp {
        rn: VReg,
        src2: MOperand,
    },
    CSet {
        rd: VReg,
        cond: Cond,
    },
    Extend {
        rd: VReg,
        rm: VReg,
        from: MemWidth,
        signed: bool,
    },
    /// `rdlo:rdhi := rn * rm` (64-bit product, for mul64 legalization).
    Umull {
        rdlo: VReg,
        rdhi: VReg,
        rn: VReg,
        rm: VReg,
    },
    Load {
        rd: VReg,
        rn: VReg,
        offset: i32,
        width: MemWidth,
    },
    /// Slice-indexed load (Table 1 `Mem[R_n + B_m]` addressing).
    LoadIdx {
        rd: VReg,
        rn: VReg,
        bidx: VReg,
        shift: u8,
        width: MemWidth,
    },
    /// Slice-indexed slice load; speculative form checks > 0xFF.
    SLoadIdx {
        bd: VReg,
        rn: VReg,
        bidx: VReg,
        shift: u8,
        speculative: bool,
    },
    Store {
        rs: VReg,
        rn: VReg,
        offset: i32,
        width: MemWidth,
    },
    /// Materialize the address of a global.
    GlobalAddr {
        rd: VReg,
        addr: u32,
    },
    /// Materialize the address of stack allocation `alloca`.
    FrameAddr {
        rd: VReg,
        alloca: u32,
    },
    /// Read incoming argument word `slot` (flattened across 64-bit pairs).
    GetParam {
        rd: VReg,
        slot: u32,
    },
    /// Call pseudo: argument/return marshalling expands at emission.
    Call {
        callee: FuncId,
        args: Vec<VReg>,
        rets: Vec<VReg>,
    },
    Out {
        rn: VReg,
    },
    /// Misspeculate iff `rn != 0` (64-bit speculative-truncate support).
    SpecCheck {
        rn: VReg,
    },

    // ---- slice (Table 1) forms -------------------------------------------
    SAlu {
        op: SAluOp,
        bd: VReg,
        bn: VReg,
        src2: SMOperand,
        speculative: bool,
    },
    SCmp {
        bn: VReg,
        src2: SMOperand,
    },
    SLoadSpec {
        bd: VReg,
        rn: VReg,
        offset: i32,
    },
    SLoad {
        bd: VReg,
        rn: VReg,
        offset: i32,
    },
    SStore {
        bs: VReg,
        rn: VReg,
        offset: i32,
    },
    SExtend {
        rd: VReg,
        bn: VReg,
        signed: bool,
    },
    STrunc {
        bd: VReg,
        rn: VReg,
        speculative: bool,
    },
    SMov {
        bd: VReg,
        bs: VReg,
    },
    SMovImm {
        bd: VReg,
        imm: u8,
    },
}

impl MirInst {
    /// The virtual registers this instruction reads.
    pub fn uses(&self) -> Vec<VReg> {
        use MirInst::*;
        match self {
            Alu { rn, src2, .. } => {
                let mut u = vec![*rn];
                if let MOperand::VReg(v) = src2 {
                    u.push(*v);
                }
                u
            }
            MovImm { .. }
            | CSet { .. }
            | GlobalAddr { .. }
            | FrameAddr { .. }
            | GetParam { .. }
            | SMovImm { .. } => vec![],
            Mov { rm, .. } | MovCc { rm, .. } => vec![*rm],
            Cmp { rn, src2 } => {
                let mut u = vec![*rn];
                if let MOperand::VReg(v) = src2 {
                    u.push(*v);
                }
                u
            }
            Extend { rm, .. } => vec![*rm],
            Umull { rn, rm, .. } => vec![*rn, *rm],
            Load { rn, .. } => vec![*rn],
            Store { rs, rn, .. } => vec![*rs, *rn],
            Call { args, .. } => args.clone(),
            Out { rn } | SpecCheck { rn } => vec![*rn],
            SAlu { bn, src2, .. } => {
                let mut u = vec![*bn];
                if let SMOperand::VReg(v) = src2 {
                    u.push(*v);
                }
                u
            }
            SCmp { bn, src2 } => {
                let mut u = vec![*bn];
                if let SMOperand::VReg(v) = src2 {
                    u.push(*v);
                }
                u
            }
            SLoadSpec { rn, .. } | SLoad { rn, .. } => vec![*rn],
            LoadIdx { rn, bidx, .. } | SLoadIdx { rn, bidx, .. } => vec![*rn, *bidx],
            SStore { bs, rn, .. } => vec![*bs, *rn],
            SExtend { bn, .. } => vec![*bn],
            STrunc { rn, .. } => vec![*rn],
            SMov { bs, .. } => vec![*bs],
        }
    }

    /// The virtual registers this instruction writes.
    pub fn defs(&self) -> Vec<VReg> {
        use MirInst::*;
        match self {
            Alu { rd, .. }
            | MovImm { rd, .. }
            | Mov { rd, .. }
            | MovCc { rd, .. }
            | CSet { rd, .. }
            | Extend { rd, .. }
            | Load { rd, .. }
            | GlobalAddr { rd, .. }
            | FrameAddr { rd, .. }
            | GetParam { rd, .. }
            | SExtend { rd, .. } => vec![*rd],
            Umull { rdlo, rdhi, .. } => vec![*rdlo, *rdhi],
            Call { rets, .. } => rets.clone(),
            SAlu { bd, .. }
            | SLoadSpec { bd, .. }
            | SLoad { bd, .. }
            | STrunc { bd, .. }
            | SMov { bd, .. }
            | SMovImm { bd, .. }
            | SLoadIdx { bd, .. } => vec![*bd],
            LoadIdx { rd, .. } => vec![*rd],
            Cmp { .. }
            | Store { .. }
            | Out { .. }
            | SpecCheck { .. }
            | SCmp { .. }
            | SStore { .. } => {
                vec![]
            }
        }
    }

    /// Whether this is a call pseudo (interval-crossing constraint for the
    /// register allocator).
    pub fn is_call(&self) -> bool {
        matches!(self, MirInst::Call { .. })
    }

    /// Whether this instruction has observable effects even if its defs are
    /// dead.
    pub fn has_side_effects(&self) -> bool {
        // Flag-setting ALU ops exist for their flags (64-bit compares).
        if let MirInst::Alu { op, .. } = self {
            if op.sets_flags() {
                return true;
            }
        }
        matches!(
            self,
            MirInst::Store { .. }
                | MirInst::SStore { .. }
                | MirInst::Call { .. }
                | MirInst::Out { .. }
                | MirInst::Cmp { .. }
                | MirInst::SCmp { .. }
                | MirInst::SpecCheck { .. }
                | MirInst::SLoadSpec { .. }
                | MirInst::LoadIdx { .. }
                | MirInst::SLoadIdx {
                    speculative: true,
                    ..
                }
                | MirInst::STrunc {
                    speculative: true,
                    ..
                }
                | MirInst::SAlu {
                    speculative: true,
                    ..
                }
                | MirInst::Load { .. }
        )
    }
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MirTerm {
    Br(MBlockId),
    /// Branch on current flags.
    Bc {
        cond: Cond,
        if_true: MBlockId,
        if_false: MBlockId,
    },
    /// Return `vals` (0, 1 or 2 words → r0/r1).
    Ret(Vec<VReg>),
}

impl MirTerm {
    pub fn successors(&self) -> Vec<MBlockId> {
        match self {
            MirTerm::Br(t) => vec![*t],
            MirTerm::Bc {
                if_true, if_false, ..
            } => vec![*if_true, *if_false],
            MirTerm::Ret(_) => vec![],
        }
    }

    pub fn uses(&self) -> Vec<VReg> {
        match self {
            MirTerm::Ret(vs) => vs.clone(),
            _ => vec![],
        }
    }
}

/// A MIR block with its region annotations.
#[derive(Debug, Clone)]
pub struct MirBlock {
    pub insts: Vec<MirInst>,
    pub term: MirTerm,
    /// Region index this block belongs to, if any.
    pub region: Option<u32>,
    /// Region index this block handles, if any.
    pub handler_for: Option<u32>,
    /// Whether this block is on the speculative side of the 2-CFG (laid out
    /// in the contiguous spec segment mirrored by skeletons).
    pub spec_side: bool,
}

/// A function in MIR form.
#[derive(Debug, Clone)]
pub struct MirFunction {
    pub name: String,
    pub blocks: Vec<MirBlock>,
    pub entry: MBlockId,
    /// Class per vreg.
    pub classes: Vec<RegClass>,
    /// (region blocks, handler block) pairs, mirrored from SIR.
    pub regions: Vec<(Vec<MBlockId>, MBlockId)>,
    /// Alloca sizes (bytes), indexed by the `alloca` field of `FrameAddr`.
    pub alloca_sizes: Vec<u32>,
    /// Number of incoming argument word slots.
    pub param_slots: u32,
}

impl MirFunction {
    pub fn block(&self, b: MBlockId) -> &MirBlock {
        &self.blocks[b.index()]
    }

    pub fn block_mut(&mut self, b: MBlockId) -> &mut MirBlock {
        &mut self.blocks[b.index()]
    }

    /// Successors including misspeculation edges (region block → handler).
    pub fn spec_succs(&self, b: MBlockId) -> Vec<MBlockId> {
        let mut s = self.block(b).term.successors();
        if let Some(r) = self.block(b).region {
            let h = self.regions[r as usize].1;
            if !s.contains(&h) {
                s.push(h);
            }
        }
        s
    }

    pub fn block_ids(&self) -> impl Iterator<Item = MBlockId> {
        (0..self.blocks.len() as u32).map(MBlockId)
    }

    pub fn class_of(&self, v: VReg) -> RegClass {
        self.classes[v.index()]
    }
}

/// Renders a MIR function as text — the back-end half of
/// `BITSPEC_PRINT_AFTER` (the SIR half is `sir::print`). One line per
/// instruction in the `Debug` form (which is already compact and names
/// vregs `v<n>`), prefixed with a header summarizing register classes and
/// regions.
pub fn print_mir(f: &MirFunction) -> String {
    use std::fmt::Write;
    let bytes = f.classes.iter().filter(|c| **c == RegClass::Byte).count();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "mfunc {} entry {:?} ({} vregs, {} byte-class, {} param slots)",
        f.name,
        f.entry,
        f.classes.len(),
        bytes,
        f.param_slots
    );
    for (ri, (blocks, handler)) in f.regions.iter().enumerate() {
        let _ = writeln!(s, "  ; region {ri}: blocks {blocks:?} handler {handler:?}");
    }
    for (i, b) in f.blocks.iter().enumerate() {
        let mut attrs = Vec::new();
        if let Some(r) = b.region {
            attrs.push(format!("region {r}"));
        }
        if let Some(r) = b.handler_for {
            attrs.push(format!("handler-for {r}"));
        }
        if b.spec_side {
            attrs.push("spec".to_string());
        }
        let suffix = if attrs.is_empty() {
            String::new()
        } else {
            format!("  ; {}", attrs.join(", "))
        };
        let _ = writeln!(s, "mb{i}:{suffix}");
        for inst in &b.insts {
            let _ = writeln!(s, "  {inst:?}");
        }
        let _ = writeln!(s, "  {:?}", b.term);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::Reg;

    #[test]
    fn uses_and_defs() {
        let _ = Reg(0);
        let i = MirInst::Alu {
            op: AluOp::Add,
            rd: VReg(0),
            rn: VReg(1),
            src2: MOperand::VReg(VReg(2)),
        };
        assert_eq!(i.defs(), vec![VReg(0)]);
        assert_eq!(i.uses(), vec![VReg(1), VReg(2)]);
        let s = MirInst::Store {
            rs: VReg(3),
            rn: VReg(4),
            offset: 0,
            width: MemWidth::W,
        };
        assert!(s.defs().is_empty());
        assert!(s.has_side_effects());
    }

    #[test]
    fn call_is_flagged() {
        let c = MirInst::Call {
            callee: sir::FuncId(0),
            args: vec![VReg(1)],
            rets: vec![VReg(2)],
        };
        assert!(c.is_call());
        assert_eq!(c.defs(), vec![VReg(2)]);
    }
}
