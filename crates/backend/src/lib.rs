//! # backend — SIR → machine code (§3.3)
//!
//! The BITSPEC back-end lowers SIR to the machine ISA of the [`isa`] crate:
//!
//! * [`mir`]: Machine IR over virtual registers (SMIR in the paper), with
//!   speculative-region membership propagated from SIR (§3.3.1).
//! * [`isel`]: instruction selection (§3.3.2) — maps speculative SIR
//!   instructions onto the Table 1 slice operations, legalizes 64-bit
//!   arithmetic onto register pairs, fuses compare+branch, folds small
//!   immediates and address offsets, and destructs SSA into parallel copies
//!   on (split) edges.
//! * [`regalloc`]: a slice-aware linear-scan allocator (§3.3.3). 8-bit
//!   virtual registers may occupy any of the four byte slices of a physical
//!   register, which is where BITSPEC's register packing comes from.
//!   Liveness flows over misspeculation edges (every block of a region may
//!   jump to the handler — equation 2), so values a handler needs survive
//!   the whole region. Spilled values use a spill-everywhere scheme whose
//!   loads/stores are tagged for the Figure 10 accounting.
//! * [`emit`]: code layout (§3.3.4) — the spec segment is laid out
//!   contiguously, a skeleton segment of identical size mirrors it at
//!   `+Δ` containing branches to handlers at misspeculation-capable
//!   offsets, and `Δ` is written by the prologue (`SetDelta`).
//!
//! The entry point is [`compile_module`], producing a linked [`Program`]
//! for the simulator.

pub mod emit;
pub mod isel;
pub mod mir;
pub mod mir_verify;
pub mod regalloc;

pub use emit::{PreInst, Program};
pub use isel::CodegenOpts;

use sir::pass::{FnvHasher, IrStats, PassTrace, TracePolicy, Tracer};
use sir::verify::VerifyError;
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// The back-end pass names, in execution order, as they appear in a trace
/// when verification is on. With verification off, only the three
/// transformation passes (`isel`, `regalloc`, `emit`) run.
pub const PASS_NAMES: [&str; 6] = [
    "isel",
    "mir-verify",
    "regalloc",
    "regalloc-verify",
    "emit",
    "emit-verify",
];

/// Compiles a verified SIR module into a linked machine program.
///
/// # Panics
/// Panics on constructs the back-end does not support (64-bit division,
/// 64-bit variable-amount shifts) — see DESIGN.md for the supported subset.
pub fn compile_module(m: &sir::Module, opts: &CodegenOpts) -> Program {
    compile_module_checked(m, opts, false).expect("unchecked compile cannot fail verification")
}

/// Like [`compile_module`], but optionally verifying the machine IR after
/// instruction selection and register allocation (`mir-verify`) and the
/// Δ-skeleton layout of the linked image (`emit-verify`).
///
/// With `verify` false this is exactly [`compile_module`] and always
/// succeeds.
///
/// # Errors
/// Returns every diagnostic collected across all stages when `verify` is
/// set and an invariant is violated.
///
/// # Panics
/// Panics on constructs the back-end does not support (64-bit division,
/// 64-bit variable-amount shifts) — see DESIGN.md for the supported subset.
pub fn compile_module_checked(
    m: &sir::Module,
    opts: &CodegenOpts,
    verify: bool,
) -> Result<Program, sir::verify::VerifyError> {
    let mut tr = Tracer::new(TracePolicy::verify(verify));
    compile_module_traced(m, opts, &mut tr)
}

/// Accumulates one MIR function into the shared [`IrStats`] shape:
/// `slices` counts byte-class virtual registers (the squeezer's 8-bit
/// values after lowering), `regions` the mirrored speculative regions.
fn add_mir_stats(s: &mut IrStats, f: &mir::MirFunction) {
    s.funcs += 1;
    s.blocks += f.blocks.len() as u32;
    s.regions += f.regions.len() as u32;
    s.slices += f
        .classes
        .iter()
        .filter(|c| **c == mir::RegClass::Byte)
        .count() as u32;
    for b in &f.blocks {
        s.insts += b.insts.len() as u32;
    }
}

/// Structural fingerprint of a linked program: the flat instruction image
/// plus entry points and global initializers. Matches the role
/// [`sir::pass::ir_fingerprint`] plays for SIR — two programs fingerprint
/// equal iff the simulator sees identical images.
pub fn program_fingerprint(p: &Program) -> u64 {
    let mut h = FnvHasher::default();
    (p.insts.len() as u64).hash(&mut h);
    for i in &p.insts {
        i.hash(&mut h);
    }
    p.addrs.hash(&mut h);
    p.entry.hash(&mut h);
    p.halt.hash(&mut h);
    p.func_entries.hash(&mut h);
    p.global_inits.hash(&mut h);
    p.mem_size.hash(&mut h);
    p.compact.hash(&mut h);
    h.finish()
}

/// The per-function compiled artifact: emitted position-independent code
/// plus everything [`link_traced`] needs to merge deterministic aggregate
/// pass-trace entries — per-stage wall times, MIR size stats, verifier
/// verdicts/diagnostics, and (for print-after builds) MIR dumps.
///
/// An artifact depends only on the function's own SIR, the global data
/// layout, the codegen options, and the verify flag — the function-level
/// cache in `core::stages` keys on exactly those. Dumps and diagnostics
/// are carried for trace fidelity; cacheable artifacts have neither (the
/// cache bypasses print-after builds and never publishes rejected code).
#[derive(Debug, Clone)]
pub struct FnArtifact {
    pub code: emit::FnCode,
    /// MIR stats after isel / after regalloc (single-function counts).
    pub mid: IrStats,
    pub alloc: IrStats,
    /// Per-stage wall times (ns): isel, mir-verify, regalloc,
    /// regalloc-verify, per-function emit.
    pub t_isel: u64,
    pub t_mirv: u64,
    pub t_ra: u64,
    pub t_rav: u64,
    pub t_emit: u64,
    /// Verifier outcomes (vacuously true when verification was off).
    pub mirv_ok: bool,
    pub rav_ok: bool,
    /// Diagnostics from `mir-verify` / `regalloc-verify` on this function.
    pub mirv_problems: Vec<sir::Diag>,
    pub rav_problems: Vec<sir::Diag>,
    /// `BITSPEC_PRINT_AFTER` captures, when requested.
    pub isel_dump: Option<String>,
    pub ra_dump: Option<String>,
}

impl FnArtifact {
    /// Whether the artifact is publishable to a cache: verification (if
    /// any) accepted and no dump payload is attached.
    pub fn clean(&self) -> bool {
        self.mirv_problems.is_empty()
            && self.rav_problems.is_empty()
            && self.isel_dump.is_none()
            && self.ra_dump.is_none()
    }
}

/// Compiles one function: isel → (mir-verify) → regalloc →
/// (regalloc-verify) → per-function emit. Entirely function-local —
/// [`isel::select_function`] reads only the function, the global `layout`,
/// and `opts`; callee references stay symbolic in the emitted [`FnCode`] —
/// so calls for different functions may run on different workers and the
/// result may be cached by function content.
pub fn compile_function(
    m: &sir::Module,
    fid: sir::FuncId,
    layout: &interp::Layout,
    opts: &CodegenOpts,
    policy: &TracePolicy,
) -> FnArtifact {
    let verify = policy.verify_each;
    let t = Instant::now();
    let mir = isel::select_function(m, fid, layout, opts);
    let t_isel = t.elapsed().as_nanos() as u64;
    let mut mid = IrStats::default();
    add_mir_stats(&mut mid, &mir);
    let isel_dump = policy
        .print_after
        .matches("isel")
        .then(|| mir::print_mir(&mir));
    let (mut t_mirv, mut t_rav) = (0u64, 0u64);
    let mut mirv_problems = Vec::new();
    if verify {
        let t = Instant::now();
        mirv_problems = mir_verify::verify_mir(&mir);
        t_mirv = t.elapsed().as_nanos() as u64;
    }
    let t = Instant::now();
    let af = regalloc::allocate(mir, opts);
    let t_ra = t.elapsed().as_nanos() as u64;
    let mut alloc = IrStats::default();
    add_mir_stats(&mut alloc, &af.mir);
    let ra_dump = policy
        .print_after
        .matches("regalloc")
        .then(|| mir::print_mir(&af.mir));
    let mut rav_problems = Vec::new();
    if verify {
        let t = Instant::now();
        rav_problems = mir_verify::verify_allocated(&af);
        t_rav = t.elapsed().as_nanos() as u64;
    }
    let t = Instant::now();
    let code = emit::emit_function(&af, opts);
    let t_emit = t.elapsed().as_nanos() as u64;
    FnArtifact {
        code,
        mid,
        alloc,
        t_isel,
        t_mirv,
        t_ra,
        t_rav,
        t_emit,
        mirv_ok: mirv_problems.is_empty(),
        rav_ok: rav_problems.is_empty(),
        mirv_problems,
        rav_problems,
        isel_dump,
        ra_dump,
    }
}

/// The serial layout/link pass with trace merging: takes per-function
/// artifacts *in function order* (however they were produced — serially,
/// across pool workers, or from a cache), merges their measurements into
/// the aggregate `isel`/`mir-verify`/`regalloc`/`regalloc-verify` entries,
/// links the image, and records `emit`/`emit-verify`.
///
/// Merging is deterministic by construction: every fold (wall-time sums,
/// stat accumulation, dump concatenation, diagnostic collection, the
/// earliest-rejecting-stage attribution) walks `arts` in function order,
/// so the trace and any error are independent of completion order.
///
/// `cached` marks the merged per-function entries as cache-replayed (their
/// wall times are the recorded compute-time walls); the `emit` and
/// `emit-verify` entries are always fresh, since linking re-runs per build.
///
/// # Errors
/// Returns every diagnostic collected across all stages when verification
/// was on and an invariant was violated; the error names the earliest
/// back-end stage that rejected in (function, stage) order.
pub fn link_traced<A: std::borrow::Borrow<FnArtifact>>(
    m: &sir::Module,
    arts: &[A],
    opts: &CodegenOpts,
    layout: &interp::Layout,
    tr: &mut Tracer,
    cached: bool,
) -> Result<Program, VerifyError> {
    let verify = tr.verify_each();
    let sir_stats = IrStats::of_module(m);
    let want_isel_dump = tr.policy.print_after.matches("isel");
    let want_ra_dump = tr.policy.print_after.matches("regalloc");

    let mut problems = Vec::new();
    let mut first_bad: Option<&'static str> = None;
    let mut bad = |slot: &mut Option<&'static str>, stage, fresh: &[sir::Diag]| {
        if slot.is_none() && !fresh.is_empty() {
            *slot = Some(stage);
        }
        problems.extend_from_slice(fresh);
    };
    let (mut t_isel, mut t_mirv, mut t_ra, mut t_rav, mut t_emit) = (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut mid = IrStats::default();
    let mut allocated = IrStats::default();
    let mut isel_dump = String::new();
    let mut ra_dump = String::new();
    let mut mirv_ok = true;
    let mut rav_ok = true;
    let acc = |s: &mut IrStats, f: &IrStats| {
        s.funcs += f.funcs;
        s.blocks += f.blocks;
        s.insts += f.insts;
        s.regions += f.regions;
        s.slices += f.slices;
    };
    for a in arts {
        let a = a.borrow();
        t_isel += a.t_isel;
        t_mirv += a.t_mirv;
        t_ra += a.t_ra;
        t_rav += a.t_rav;
        t_emit += a.t_emit;
        acc(&mut mid, &a.mid);
        acc(&mut allocated, &a.alloc);
        if let Some(d) = &a.isel_dump {
            isel_dump.push_str(d);
        }
        if let Some(d) = &a.ra_dump {
            ra_dump.push_str(d);
        }
        bad(&mut first_bad, "mir-verify", &a.mirv_problems);
        mirv_ok &= a.mirv_ok;
        bad(&mut first_bad, "regalloc-verify", &a.rav_problems);
        rav_ok &= a.rav_ok;
    }
    let mut isel_entry = PassTrace::new("isel", t_isel).stats(sir_stats, mid);
    isel_entry.cached = cached;
    if want_isel_dump {
        isel_entry.dump = Some(isel_dump);
    }
    tr.record(isel_entry);
    if verify {
        let mut e = PassTrace::new("mir-verify", t_mirv).verified(mirv_ok);
        e.cached = cached;
        tr.record(e);
    }
    let mut ra_entry = PassTrace::new("regalloc", t_ra).stats(mid, allocated);
    ra_entry.cached = cached;
    if want_ra_dump {
        ra_entry.dump = Some(ra_dump);
    }
    tr.record(ra_entry);
    if verify {
        let mut e = PassTrace::new("regalloc-verify", t_rav).verified(rav_ok);
        e.cached = cached;
        tr.record(e);
    }

    let t = Instant::now();
    let codes: Vec<&emit::FnCode> = arts.iter().map(|a| &a.borrow().code).collect();
    let program = emit::link_codes(m, &codes, opts, layout);
    t_emit += t.elapsed().as_nanos() as u64;
    let prog_stats = IrStats {
        funcs: program.func_entries.len() as u32,
        insts: program.insts.len() as u32,
        regions: program.spec_targets.len() as u32,
        ..IrStats::default()
    };
    tr.record(
        PassTrace::new("emit", t_emit)
            .stats(allocated, prog_stats)
            .fingerprinted(program_fingerprint(&program)),
    );
    if verify {
        let t = Instant::now();
        let p = emit::verify_layout(&program);
        let t_ev = t.elapsed().as_nanos() as u64;
        bad(&mut first_bad, "emit-verify", &p);
        tr.record(PassTrace::new("emit-verify", t_ev).verified(p.is_empty()));
    }

    if let Err(e) = VerifyError::check(problems) {
        let stage = first_bad.unwrap_or("backend");
        return Err(e.in_pass(stage, sir::print::print_module(m)));
    }
    Ok(program)
}

/// [`compile_module_checked`] with full per-pass instrumentation: the
/// tracer receives one entry per back-end pass (`isel`, `regalloc`,
/// `emit`, and — when the policy verifies — `mir-verify`,
/// `regalloc-verify`, `emit-verify`). Stage wall times are aggregated
/// across functions; IR deltas use [`IrStats`] with `slices` meaning
/// byte-class vregs; the `emit` entry carries the program fingerprint.
/// `BITSPEC_PRINT_AFTER=isel|regalloc` dumps the MIR of every function via
/// [`mir::print_mir`].
///
/// This is the serial composition of [`compile_function`] per function and
/// one [`link_traced`]; the function-level cache in `core::stages` is the
/// parallel/incremental composition of the same two pieces.
///
/// Verification keeps the accumulate-all-diagnostics semantics of
/// [`compile_module_checked`]; the returned error names the earliest
/// back-end stage that rejected and carries the (last-good) SIR input as
/// its failure artifact.
///
/// # Errors
/// Returns every diagnostic collected across all stages when the tracer's
/// policy verifies and an invariant is violated.
///
/// # Panics
/// Panics on constructs the back-end does not support (64-bit division,
/// 64-bit variable-amount shifts) — see DESIGN.md for the supported subset.
pub fn compile_module_traced(
    m: &sir::Module,
    opts: &CodegenOpts,
    tr: &mut Tracer,
) -> Result<Program, VerifyError> {
    let layout = interp::Layout::new(m);
    let policy = tr.policy.clone();
    let arts: Vec<FnArtifact> = m
        .func_ids()
        .map(|fid| compile_function(m, fid, &layout, opts, &policy))
        .collect();
    link_traced(m, &arts, opts, &layout, tr, false)
}
