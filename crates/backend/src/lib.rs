//! # backend — SIR → machine code (§3.3)
//!
//! The BITSPEC back-end lowers SIR to the machine ISA of the [`isa`] crate:
//!
//! * [`mir`]: Machine IR over virtual registers (SMIR in the paper), with
//!   speculative-region membership propagated from SIR (§3.3.1).
//! * [`isel`]: instruction selection (§3.3.2) — maps speculative SIR
//!   instructions onto the Table 1 slice operations, legalizes 64-bit
//!   arithmetic onto register pairs, fuses compare+branch, folds small
//!   immediates and address offsets, and destructs SSA into parallel copies
//!   on (split) edges.
//! * [`regalloc`]: a slice-aware linear-scan allocator (§3.3.3). 8-bit
//!   virtual registers may occupy any of the four byte slices of a physical
//!   register, which is where BITSPEC's register packing comes from.
//!   Liveness flows over misspeculation edges (every block of a region may
//!   jump to the handler — equation 2), so values a handler needs survive
//!   the whole region. Spilled values use a spill-everywhere scheme whose
//!   loads/stores are tagged for the Figure 10 accounting.
//! * [`emit`]: code layout (§3.3.4) — the spec segment is laid out
//!   contiguously, a skeleton segment of identical size mirrors it at
//!   `+Δ` containing branches to handlers at misspeculation-capable
//!   offsets, and `Δ` is written by the prologue (`SetDelta`).
//!
//! The entry point is [`compile_module`], producing a linked [`Program`]
//! for the simulator.

pub mod emit;
pub mod isel;
pub mod mir;
pub mod mir_verify;
pub mod regalloc;

pub use emit::{PreInst, Program};
pub use isel::CodegenOpts;

use sir::pass::{FnvHasher, IrStats, PassTrace, TracePolicy, Tracer};
use sir::verify::VerifyError;
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// The back-end pass names, in execution order, as they appear in a trace
/// when verification is on. With verification off, only the three
/// transformation passes (`isel`, `regalloc`, `emit`) run.
pub const PASS_NAMES: [&str; 6] = [
    "isel",
    "mir-verify",
    "regalloc",
    "regalloc-verify",
    "emit",
    "emit-verify",
];

/// Compiles a verified SIR module into a linked machine program.
///
/// # Panics
/// Panics on constructs the back-end does not support (64-bit division,
/// 64-bit variable-amount shifts) — see DESIGN.md for the supported subset.
pub fn compile_module(m: &sir::Module, opts: &CodegenOpts) -> Program {
    compile_module_checked(m, opts, false).expect("unchecked compile cannot fail verification")
}

/// Like [`compile_module`], but optionally verifying the machine IR after
/// instruction selection and register allocation (`mir-verify`) and the
/// Δ-skeleton layout of the linked image (`emit-verify`).
///
/// With `verify` false this is exactly [`compile_module`] and always
/// succeeds.
///
/// # Errors
/// Returns every diagnostic collected across all stages when `verify` is
/// set and an invariant is violated.
///
/// # Panics
/// Panics on constructs the back-end does not support (64-bit division,
/// 64-bit variable-amount shifts) — see DESIGN.md for the supported subset.
pub fn compile_module_checked(
    m: &sir::Module,
    opts: &CodegenOpts,
    verify: bool,
) -> Result<Program, sir::verify::VerifyError> {
    let mut tr = Tracer::new(TracePolicy::verify(verify));
    compile_module_traced(m, opts, &mut tr)
}

/// Accumulates one MIR function into the shared [`IrStats`] shape:
/// `slices` counts byte-class virtual registers (the squeezer's 8-bit
/// values after lowering), `regions` the mirrored speculative regions.
fn add_mir_stats(s: &mut IrStats, f: &mir::MirFunction) {
    s.funcs += 1;
    s.blocks += f.blocks.len() as u32;
    s.regions += f.regions.len() as u32;
    s.slices += f
        .classes
        .iter()
        .filter(|c| **c == mir::RegClass::Byte)
        .count() as u32;
    for b in &f.blocks {
        s.insts += b.insts.len() as u32;
    }
}

/// Structural fingerprint of a linked program: the flat instruction image
/// plus entry points and global initializers. Matches the role
/// [`sir::pass::ir_fingerprint`] plays for SIR — two programs fingerprint
/// equal iff the simulator sees identical images.
pub fn program_fingerprint(p: &Program) -> u64 {
    let mut h = FnvHasher::default();
    (p.insts.len() as u64).hash(&mut h);
    for i in &p.insts {
        i.hash(&mut h);
    }
    p.addrs.hash(&mut h);
    p.entry.hash(&mut h);
    p.halt.hash(&mut h);
    p.func_entries.hash(&mut h);
    p.global_inits.hash(&mut h);
    p.mem_size.hash(&mut h);
    p.compact.hash(&mut h);
    h.finish()
}

/// [`compile_module_checked`] with full per-pass instrumentation: the
/// tracer receives one entry per back-end pass (`isel`, `regalloc`,
/// `emit`, and — when the policy verifies — `mir-verify`,
/// `regalloc-verify`, `emit-verify`). Stage wall times are aggregated
/// across functions; IR deltas use [`IrStats`] with `slices` meaning
/// byte-class vregs; the `emit` entry carries the program fingerprint.
/// `BITSPEC_PRINT_AFTER=isel|regalloc` dumps the MIR of every function via
/// [`mir::print_mir`].
///
/// Verification keeps the accumulate-all-diagnostics semantics of
/// [`compile_module_checked`]; the returned error names the earliest
/// back-end stage that rejected and carries the (last-good) SIR input as
/// its failure artifact.
///
/// # Errors
/// Returns every diagnostic collected across all stages when the tracer's
/// policy verifies and an invariant is violated.
///
/// # Panics
/// Panics on constructs the back-end does not support (64-bit division,
/// 64-bit variable-amount shifts) — see DESIGN.md for the supported subset.
pub fn compile_module_traced(
    m: &sir::Module,
    opts: &CodegenOpts,
    tr: &mut Tracer,
) -> Result<Program, VerifyError> {
    let layout = interp::Layout::new(m);
    let verify = tr.verify_each();
    let sir_stats = IrStats::of_module(m);
    let want_isel_dump = tr.policy.print_after.matches("isel");
    let want_ra_dump = tr.policy.print_after.matches("regalloc");

    let mut funcs = Vec::new();
    let mut problems = Vec::new();
    let mut first_bad: Option<&'static str> = None;
    let bad = |slot: &mut Option<&'static str>, stage, fresh: &[sir::Diag]| {
        if slot.is_none() && !fresh.is_empty() {
            *slot = Some(stage);
        }
    };
    let (mut t_isel, mut t_mirv, mut t_ra, mut t_rav) = (0u64, 0u64, 0u64, 0u64);
    let mut mid = IrStats::default();
    let mut allocated = IrStats::default();
    let mut isel_dump = String::new();
    let mut ra_dump = String::new();
    let mut mirv_ok = true;
    let mut rav_ok = true;
    for fid in m.func_ids() {
        let t = Instant::now();
        let mir = isel::select_function(m, fid, &layout, opts);
        t_isel += t.elapsed().as_nanos() as u64;
        add_mir_stats(&mut mid, &mir);
        if want_isel_dump {
            isel_dump.push_str(&mir::print_mir(&mir));
        }
        if verify {
            let t = Instant::now();
            let p = mir_verify::verify_mir(&mir);
            t_mirv += t.elapsed().as_nanos() as u64;
            bad(&mut first_bad, "mir-verify", &p);
            mirv_ok &= p.is_empty();
            problems.extend(p);
        }
        let t = Instant::now();
        let alloc = regalloc::allocate(mir, opts);
        t_ra += t.elapsed().as_nanos() as u64;
        add_mir_stats(&mut allocated, &alloc.mir);
        if want_ra_dump {
            ra_dump.push_str(&mir::print_mir(&alloc.mir));
        }
        if verify {
            let t = Instant::now();
            let p = mir_verify::verify_allocated(&alloc);
            t_rav += t.elapsed().as_nanos() as u64;
            bad(&mut first_bad, "regalloc-verify", &p);
            rav_ok &= p.is_empty();
            problems.extend(p);
        }
        funcs.push(alloc);
    }
    let mut isel_entry = PassTrace::new("isel", t_isel).stats(sir_stats, mid);
    if want_isel_dump {
        isel_entry.dump = Some(isel_dump);
    }
    tr.record(isel_entry);
    if verify {
        tr.record(PassTrace::new("mir-verify", t_mirv).verified(mirv_ok));
    }
    let mut ra_entry = PassTrace::new("regalloc", t_ra).stats(mid, allocated);
    if want_ra_dump {
        ra_entry.dump = Some(ra_dump);
    }
    tr.record(ra_entry);
    if verify {
        tr.record(PassTrace::new("regalloc-verify", t_rav).verified(rav_ok));
    }

    let t = Instant::now();
    let program = emit::link(m, funcs, opts, &layout);
    let t_emit = t.elapsed().as_nanos() as u64;
    let prog_stats = IrStats {
        funcs: program.func_entries.len() as u32,
        insts: program.insts.len() as u32,
        regions: program.spec_targets.len() as u32,
        ..IrStats::default()
    };
    tr.record(
        PassTrace::new("emit", t_emit)
            .stats(allocated, prog_stats)
            .fingerprinted(program_fingerprint(&program)),
    );
    if verify {
        let t = Instant::now();
        let p = emit::verify_layout(&program);
        let t_ev = t.elapsed().as_nanos() as u64;
        bad(&mut first_bad, "emit-verify", &p);
        tr.record(PassTrace::new("emit-verify", t_ev).verified(p.is_empty()));
        problems.extend(p);
    }

    if let Err(e) = VerifyError::check(problems) {
        let stage = first_bad.unwrap_or("backend");
        return Err(e.in_pass(stage, sir::print::print_module(m)));
    }
    Ok(program)
}
