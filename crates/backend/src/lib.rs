//! # backend — SIR → machine code (§3.3)
//!
//! The BITSPEC back-end lowers SIR to the machine ISA of the [`isa`] crate:
//!
//! * [`mir`]: Machine IR over virtual registers (SMIR in the paper), with
//!   speculative-region membership propagated from SIR (§3.3.1).
//! * [`isel`]: instruction selection (§3.3.2) — maps speculative SIR
//!   instructions onto the Table 1 slice operations, legalizes 64-bit
//!   arithmetic onto register pairs, fuses compare+branch, folds small
//!   immediates and address offsets, and destructs SSA into parallel copies
//!   on (split) edges.
//! * [`regalloc`]: a slice-aware linear-scan allocator (§3.3.3). 8-bit
//!   virtual registers may occupy any of the four byte slices of a physical
//!   register, which is where BITSPEC's register packing comes from.
//!   Liveness flows over misspeculation edges (every block of a region may
//!   jump to the handler — equation 2), so values a handler needs survive
//!   the whole region. Spilled values use a spill-everywhere scheme whose
//!   loads/stores are tagged for the Figure 10 accounting.
//! * [`emit`]: code layout (§3.3.4) — the spec segment is laid out
//!   contiguously, a skeleton segment of identical size mirrors it at
//!   `+Δ` containing branches to handlers at misspeculation-capable
//!   offsets, and `Δ` is written by the prologue (`SetDelta`).
//!
//! The entry point is [`compile_module`], producing a linked [`Program`]
//! for the simulator.

pub mod emit;
pub mod isel;
pub mod mir;
pub mod mir_verify;
pub mod regalloc;

pub use emit::{PreInst, Program};
pub use isel::CodegenOpts;

/// Compiles a verified SIR module into a linked machine program.
///
/// # Panics
/// Panics on constructs the back-end does not support (64-bit division,
/// 64-bit variable-amount shifts) — see DESIGN.md for the supported subset.
pub fn compile_module(m: &sir::Module, opts: &CodegenOpts) -> Program {
    compile_module_checked(m, opts, false).expect("unchecked compile cannot fail verification")
}

/// Like [`compile_module`], but optionally verifying the machine IR after
/// instruction selection and register allocation (`mir-verify`) and the
/// Δ-skeleton layout of the linked image (`emit-verify`).
///
/// With `verify` false this is exactly [`compile_module`] and always
/// succeeds.
///
/// # Errors
/// Returns every diagnostic collected across all stages when `verify` is
/// set and an invariant is violated.
///
/// # Panics
/// Panics on constructs the back-end does not support (64-bit division,
/// 64-bit variable-amount shifts) — see DESIGN.md for the supported subset.
pub fn compile_module_checked(
    m: &sir::Module,
    opts: &CodegenOpts,
    verify: bool,
) -> Result<Program, sir::verify::VerifyError> {
    let layout = interp::Layout::new(m);
    let mut funcs = Vec::new();
    let mut problems = Vec::new();
    for fid in m.func_ids() {
        let mir = isel::select_function(m, fid, &layout, opts);
        if verify {
            problems.extend(mir_verify::verify_mir(&mir));
        }
        let alloc = regalloc::allocate(mir, opts);
        if verify {
            problems.extend(mir_verify::verify_allocated(&alloc));
        }
        funcs.push(alloc);
    }
    let program = emit::link(m, funcs, opts, &layout);
    if verify {
        problems.extend(emit::verify_layout(&program));
    }
    sir::verify::VerifyError::check(problems)?;
    Ok(program)
}
