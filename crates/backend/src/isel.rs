//! Instruction selection: SIR → MIR (§3.3.1–3.3.2).
//!
//! * 64-bit values are legalized onto register pairs (`adds/adc` chains,
//!   `umull`-based multiplies, constant-amount shift expansions).
//! * Sub-word (8/16-bit) values are kept *canonical* (zero-extended) in
//!   word registers; in BITSPEC mode, 8-bit values live in slice virtual
//!   registers and use the Table 1 operations instead.
//! * Compares feeding a conditional branch in the same block are fused
//!   (no materialized boolean); the compare is sunk to just before the
//!   terminator, ahead of the φ-resolution copies (which never touch
//!   flags).
//! * SSA is destructed by splitting critical edges and placing ordered
//!   parallel-copy sequences at predecessor ends.
//! * Compact mode (RQ9) restricts ALU ops to two-address form and eight
//!   registers, mirroring Thumb's main costs.

use crate::mir::{
    MBlockId, MOperand, MirBlock, MirFunction, MirInst, MirTerm, RegClass, SAluOp, SMOperand, VReg,
};
use interp::Layout;
use isa::{AluOp, Cond, MemWidth};
use sir::{BinOp, BlockId, Cc, FuncId, Function, Inst, Module, Terminator, ValueId, Width};
use std::collections::HashMap;

/// Code generation options (architecture selection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodegenOpts {
    /// Use the BITSPEC slice ISA (required for squeezed modules).
    pub bitspec: bool,
    /// Thumb-like compact mode (RQ9): 2-address ALU, 8 registers, 2-byte
    /// encodings. Mutually exclusive with `bitspec`.
    pub compact: bool,
    /// The register allocator's branch-weight heuristic (RQ5): when true
    /// (the paper's default), handlers are treated as almost-never-taken,
    /// so spilling prefers `CFG_orig` values and keeps `CFG_spec` fast.
    pub spill_prefer_orig: bool,
}

impl Default for CodegenOpts {
    fn default() -> Self {
        CodegenOpts {
            bitspec: true,
            compact: false,
            spill_prefer_orig: true,
        }
    }
}

/// Load addressing modes.
#[derive(Debug, Clone, Copy)]
enum AddrMode {
    BaseOff(VReg, i32),
    /// `base + (slice << shift)` — Table 1 slice-indexed addressing.
    BaseSliceIdx(VReg, VReg, u8),
}

/// How a SIR value maps onto virtual registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Val {
    /// One word register (W1/W16/W32, and W8 in non-BITSPEC mode).
    W(VReg),
    /// An 8-bit slice register (BITSPEC mode only).
    B(VReg),
    /// A 64-bit pair (lo, hi).
    Pair(VReg, VReg),
}

/// Selects instructions for one function.
pub fn select_function(
    m: &Module,
    fid: FuncId,
    layout: &Layout,
    opts: &CodegenOpts,
) -> MirFunction {
    assert!(
        !(opts.bitspec && opts.compact),
        "compact mode has no BITSPEC extensions"
    );
    let mut f = m.func(fid).clone();
    split_critical_edges(&mut f);
    let mut use_counts = vec![0u32; f.insts.len()];
    let mut count = |v: ValueId| {
        if (v.index()) < use_counts.len() {
            use_counts[v.index()] += 1;
        }
    };
    for i in &f.insts {
        for o in i.operands() {
            count(o);
        }
    }
    for b in &f.blocks {
        for o in b.term.operands() {
            count(o);
        }
    }
    let sel = Selector {
        m,
        f: &f,
        layout,
        opts,
        classes: Vec::new(),
        vals: HashMap::new(),
        blocks: Vec::new(),
        alloca_sizes: Vec::new(),
        alloca_ids: HashMap::new(),
        cur: Vec::new(),
        use_counts,
    };
    sel.run()
}

fn split_critical_edges(f: &mut Function) {
    let preds = f.branch_preds();
    let mut edges = Vec::new();
    for p in f.block_ids() {
        let succs = f.succs(p);
        if succs.len() < 2 {
            continue;
        }
        for s in succs {
            if preds[s.index()].len() > 1 {
                edges.push((p, s));
            }
        }
    }
    for (p, s) in edges {
        if f.phi_count(s) == 0 {
            continue; // no copies needed on this edge
        }
        let e = f.add_block();
        // Inherit the region side for layout grouping (an edge block never
        // contains speculative instructions, so it is not region-member).
        f.block_mut(e).term = Terminator::Br(s);
        let mut term = f.block(p).term.clone();
        let mut done = false;
        term.map_successors(|t| {
            // Only retarget ONE occurrence; a condbr with both edges to the
            // same φ-bearing block would be two distinct critical edges, but
            // then φ inputs agree, so one retarget suffices per call.
            if t == s && !done {
                done = true;
                e
            } else {
                t
            }
        });
        f.block_mut(p).term = term;
        // Update φ incomings: edge p→s becomes e→s.
        let phis: Vec<ValueId> = f
            .block(s)
            .insts
            .iter()
            .copied()
            .filter(|v| f.inst(*v).is_phi())
            .collect();
        for phi in phis {
            if let Inst::Phi { incomings, .. } = f.inst_mut(phi) {
                let mut fixed = false;
                for (pb, _) in incomings {
                    if *pb == p && !fixed {
                        *pb = e;
                        fixed = true;
                    }
                }
            }
        }
    }
}

#[allow(dead_code)]
struct Selector<'a> {
    m: &'a Module,
    f: &'a Function,
    layout: &'a Layout,
    opts: &'a CodegenOpts,
    classes: Vec<RegClass>,
    vals: HashMap<ValueId, Val>,
    blocks: Vec<MirBlock>,
    alloca_sizes: Vec<u32>,
    alloca_ids: HashMap<ValueId, u32>,
    cur: Vec<MirInst>,
    /// Operand occurrences per SIR value across the whole function
    /// (instruction operands + terminator operands), indexed by `ValueId`.
    use_counts: Vec<u32>,
}

impl<'a> Selector<'a> {
    fn new_vreg(&mut self, class: RegClass) -> VReg {
        let v = VReg(self.classes.len() as u32);
        self.classes.push(class);
        v
    }

    fn val_of(&self, v: ValueId) -> Val {
        *self
            .vals
            .get(&v)
            .unwrap_or_else(|| panic!("no vreg for {v}"))
    }

    fn word_of(&self, v: ValueId) -> VReg {
        match self.val_of(v) {
            Val::W(r) => r,
            other => panic!("{v} is not a word value: {other:?}"),
        }
    }

    fn emit(&mut self, i: MirInst) {
        self.cur.push(i);
    }

    fn run(mut self) -> MirFunction {
        let f = self.f;
        // Pre-create vregs for every SIR value so forward references (φs,
        // back edges) resolve.
        for vi in 0..f.insts.len() as u32 {
            let v = ValueId(vi);
            let Some(w) = f.value_width(v) else { continue };
            let val = match w {
                Width::W64 => {
                    let lo = self.new_vreg(RegClass::Word);
                    let hi = self.new_vreg(RegClass::Word);
                    Val::Pair(lo, hi)
                }
                Width::W8 if self.opts.bitspec => Val::B(self.new_vreg(RegClass::Byte)),
                _ => Val::W(self.new_vreg(RegClass::Word)),
            };
            self.vals.insert(v, val);
        }
        // Create MIR blocks 1:1.
        let spec_side = spec_side_blocks(f);
        for b in f.block_ids() {
            let blk = f.block(b);
            self.blocks.push(MirBlock {
                insts: Vec::new(),
                term: MirTerm::Ret(vec![]),
                region: blk.region.map(|r| r.0),
                handler_for: blk.handler_for.map(|r| r.0),
                spec_side: spec_side[b.index()],
            });
        }
        // Select per block.
        for b in f.block_ids() {
            self.cur = Vec::new();
            self.select_block(b);
            let term = self.lower_terminator(b);
            let mb = &mut self.blocks[b.index()];
            mb.insts = std::mem::take(&mut self.cur);
            mb.term = term;
        }
        // φ-resolution copies at predecessor ends (before sunk compares are
        // respected: copies are inserted before the trailing Cmp/SCmp if one
        // exists — flags must be set immediately before the branch, but
        // copies don't touch flags, so copies-then-cmp and cmp-then-copies
        // are both safe; we insert before the cmp so compare operands are
        // not shadowed… φ-copy destinations are successor φ vregs which
        // never feed this block's compare, so order is immaterial. We
        // append after the cmp for simplicity.)
        self.insert_phi_copies();
        let regions = f
            .regions
            .iter()
            .map(|r| {
                (
                    r.blocks.iter().map(|b| MBlockId(b.0)).collect(),
                    MBlockId(r.handler.0),
                )
            })
            .collect();
        let param_slots = f.params.iter().map(|w| word_slots(*w)).sum();
        let mut mf = MirFunction {
            name: f.name.clone(),
            blocks: self.blocks,
            entry: MBlockId(f.entry.0),
            classes: self.classes,
            regions,
            alloca_sizes: self.alloca_sizes,
            param_slots,
        };
        mir_dce(&mut mf);
        mf
    }

    fn select_block(&mut self, b: BlockId) {
        let f = self.f;
        for &v in &f.block(b).insts {
            let inst = f.inst(v).clone();
            if inst.is_phi() {
                continue; // resolved by edge copies
            }
            self.select_inst(b, v, &inst);
        }
    }

    // ---- terminators ------------------------------------------------------

    fn lower_terminator(&mut self, b: BlockId) -> MirTerm {
        let f = self.f;
        match f.block(b).term.clone() {
            Terminator::Br(t) => MirTerm::Br(MBlockId(t.0)),
            Terminator::CondBr {
                cond,
                if_true,
                if_false,
            } => {
                // Fuse when the condition is an icmp defined in this block
                // with no other uses.
                if let Some((cc, width, lhs, rhs)) = self.fusable_icmp(b, cond) {
                    let mcond = self.emit_compare(cc, width, lhs, rhs);
                    return MirTerm::Bc {
                        cond: mcond,
                        if_true: MBlockId(if_true.0),
                        if_false: MBlockId(if_false.0),
                    };
                }
                let c = self.word_of(cond);
                self.emit(MirInst::Cmp {
                    rn: c,
                    src2: MOperand::Imm(1),
                });
                MirTerm::Bc {
                    cond: Cond::Eq,
                    if_true: MBlockId(if_true.0),
                    if_false: MBlockId(if_false.0),
                }
            }
            Terminator::Ret(v) => {
                let vals = match v {
                    None => vec![],
                    Some(v) => match self.val_of(v) {
                        Val::W(r) => vec![r],
                        Val::Pair(lo, hi) => vec![lo, hi],
                        Val::B(s) => {
                            let w = self.new_vreg(RegClass::Word);
                            self.emit(MirInst::SExtend {
                                rd: w,
                                bn: s,
                                signed: false,
                            });
                            vec![w]
                        }
                    },
                };
                MirTerm::Ret(vals)
            }
            Terminator::Unreachable => MirTerm::Ret(vec![]),
        }
    }

    /// If `cond` is an icmp defined in `b` used only by `b`'s terminator,
    /// returns its pieces for fusion.
    fn fusable_icmp(&self, b: BlockId, cond: ValueId) -> Option<(Cc, Width, ValueId, ValueId)> {
        let f = self.f;
        let Inst::Icmp {
            cc,
            width,
            lhs,
            rhs,
        } = f.inst(cond)
        else {
            return None;
        };
        if !f.block(b).insts.contains(&cond) {
            return None;
        }
        if self.use_counts[cond.index()] > 1 {
            return None;
        }
        Some((*cc, *width, *lhs, *rhs))
    }

    /// Emits the flag-setting compare sequence; returns the branch
    /// condition. Handles all widths incl. 64-bit pair compares.
    fn emit_compare(&mut self, cc: Cc, width: Width, lhs: ValueId, rhs: ValueId) -> Cond {
        match width {
            Width::W64 => self.emit_compare64(cc, lhs, rhs),
            Width::W8 if self.opts.bitspec => {
                let bn = self.byte_of(lhs);
                let src2 = self.byte_operand(rhs);
                self.emit(MirInst::SCmp { bn, src2 });
                cond_of(cc)
            }
            Width::W16 | Width::W8 if cc.is_signed() => {
                // Canonical zero-extended storage: sign-extend first.
                let sw = if width == Width::W16 {
                    MemWidth::H
                } else {
                    MemWidth::B
                };
                let l = self.word_of(lhs);
                let r = self.word_of(rhs);
                let le = self.new_vreg(RegClass::Word);
                let re = self.new_vreg(RegClass::Word);
                self.emit(MirInst::Extend {
                    rd: le,
                    rm: l,
                    from: sw,
                    signed: true,
                });
                self.emit(MirInst::Extend {
                    rd: re,
                    rm: r,
                    from: sw,
                    signed: true,
                });
                self.emit(MirInst::Cmp {
                    rn: le,
                    src2: MOperand::VReg(re),
                });
                cond_of(cc)
            }
            _ => {
                let l = self.word_of(lhs);
                let src2 = self.word_operand(rhs);
                self.emit(MirInst::Cmp { rn: l, src2 });
                cond_of(cc)
            }
        }
    }

    fn emit_compare64(&mut self, cc: Cc, lhs: ValueId, rhs: ValueId) -> Cond {
        let Val::Pair(alo, ahi) = self.val_of(lhs) else {
            panic!("W64 compare of non-pair")
        };
        let Val::Pair(blo, bhi) = self.val_of(rhs) else {
            panic!("W64 compare of non-pair")
        };
        match cc {
            Cc::Eq | Cc::Ne => {
                let t1 = self.new_vreg(RegClass::Word);
                let t2 = self.new_vreg(RegClass::Word);
                let t3 = self.new_vreg(RegClass::Word);
                self.emit(MirInst::Alu {
                    op: AluOp::Eor,
                    rd: t1,
                    rn: alo,
                    src2: MOperand::VReg(blo),
                });
                self.emit(MirInst::Alu {
                    op: AluOp::Eor,
                    rd: t2,
                    rn: ahi,
                    src2: MOperand::VReg(bhi),
                });
                self.emit(MirInst::Alu {
                    op: AluOp::Orr,
                    rd: t3,
                    rn: t1,
                    src2: MOperand::VReg(t2),
                });
                self.emit(MirInst::Cmp {
                    rn: t3,
                    src2: MOperand::Imm(0),
                });
                if cc == Cc::Eq {
                    Cond::Eq
                } else {
                    Cond::Ne
                }
            }
            _ => {
                // subs/sbcs chains; >,≤ swap operands.
                let (xlo, xhi, ylo, yhi, cond) = match cc {
                    Cc::Ult => (alo, ahi, blo, bhi, Cond::Lo),
                    Cc::Uge => (alo, ahi, blo, bhi, Cond::Hs),
                    Cc::Ugt => (blo, bhi, alo, ahi, Cond::Lo),
                    Cc::Ule => (blo, bhi, alo, ahi, Cond::Hs),
                    Cc::Slt => (alo, ahi, blo, bhi, Cond::Lt),
                    Cc::Sge => (alo, ahi, blo, bhi, Cond::Ge),
                    Cc::Sgt => (blo, bhi, alo, ahi, Cond::Lt),
                    Cc::Sle => (blo, bhi, alo, ahi, Cond::Ge),
                    _ => unreachable!(),
                };
                let t1 = self.new_vreg(RegClass::Word);
                let t2 = self.new_vreg(RegClass::Word);
                self.emit(MirInst::Alu {
                    op: AluOp::Subs,
                    rd: t1,
                    rn: xlo,
                    src2: MOperand::VReg(ylo),
                });
                self.emit(MirInst::Alu {
                    op: AluOp::Sbcs,
                    rd: t2,
                    rn: xhi,
                    src2: MOperand::VReg(yhi),
                });
                cond
            }
        }
    }

    // ---- operand helpers --------------------------------------------------

    fn word_operand(&mut self, v: ValueId) -> MOperand {
        if let Inst::Const { value, .. } = self.f.inst(v) {
            if *value <= 0xFF {
                return MOperand::Imm(*value as u32);
            }
        }
        MOperand::VReg(self.word_of(v))
    }

    fn byte_of(&mut self, v: ValueId) -> VReg {
        match self.val_of(v) {
            Val::B(s) => s,
            Val::W(_) | Val::Pair(..) => panic!("{v} is not a byte value"),
        }
    }

    fn byte_operand(&mut self, v: ValueId) -> SMOperand {
        if let Inst::Const { value, .. } = self.f.inst(v) {
            if *value <= 0xF {
                return SMOperand::Imm(*value as u8);
            }
        }
        SMOperand::VReg(self.byte_of(v))
    }

    // ---- instruction selection ---------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn select_inst(&mut self, b: BlockId, v: ValueId, inst: &Inst) {
        match inst {
            Inst::Param { .. } => {
                // Parameter slots are assigned in order.
                let mut slot = 0u32;
                for (i, w) in self.f.params.iter().enumerate() {
                    if self.f.param_value(i) == v {
                        break;
                    }
                    let _ = w;
                    slot += word_slots(self.f.params[i]);
                }
                match self.val_of(v) {
                    Val::W(r) => self.emit(MirInst::GetParam { rd: r, slot }),
                    Val::Pair(lo, hi) => {
                        self.emit(MirInst::GetParam { rd: lo, slot });
                        self.emit(MirInst::GetParam {
                            rd: hi,
                            slot: slot + 1,
                        });
                    }
                    Val::B(s) => {
                        let t = self.new_vreg(RegClass::Word);
                        self.emit(MirInst::GetParam { rd: t, slot });
                        self.emit(MirInst::STrunc {
                            bd: s,
                            rn: t,
                            speculative: false,
                        });
                    }
                }
            }
            Inst::Const { width, value } => match self.val_of(v) {
                Val::W(r) => self.emit(MirInst::MovImm {
                    rd: r,
                    imm: (*value & 0xFFFF_FFFF) as u32,
                }),
                Val::B(s) => self.emit(MirInst::SMovImm {
                    bd: s,
                    imm: (*value & 0xFF) as u8,
                }),
                Val::Pair(lo, hi) => {
                    let _ = width;
                    self.emit(MirInst::MovImm {
                        rd: lo,
                        imm: (*value & 0xFFFF_FFFF) as u32,
                    });
                    self.emit(MirInst::MovImm {
                        rd: hi,
                        imm: (*value >> 32) as u32,
                    });
                }
            },
            Inst::GlobalAddr { global } => {
                let rd = self.word_of(v);
                self.emit(MirInst::GlobalAddr {
                    rd,
                    addr: self.layout.addr(*global),
                });
            }
            Inst::Alloca { size } => {
                let id = self.alloca_sizes.len() as u32;
                self.alloca_sizes.push(*size);
                self.alloca_ids.insert(v, id);
                let rd = self.word_of(v);
                self.emit(MirInst::FrameAddr { rd, alloca: id });
            }
            Inst::Bin {
                op,
                width,
                lhs,
                rhs,
                speculative,
            } => self.select_bin(v, *op, *width, *lhs, *rhs, *speculative),
            Inst::Icmp {
                cc,
                width,
                lhs,
                rhs,
            } => {
                // Fused icmps are skipped here and emitted at the terminator.
                if self
                    .fusable_icmp(b, v)
                    .map(|_| {
                        matches!(&self.f.block(b).term, Terminator::CondBr { cond, .. } if *cond == v)
                    })
                    .unwrap_or(false)
                {
                    return;
                }
                let cond = self.emit_compare(*cc, *width, *lhs, *rhs);
                let rd = self.word_of(v);
                self.emit(MirInst::CSet { rd, cond });
            }
            Inst::Zext { to, arg } => self.select_zext(v, *to, *arg),
            Inst::Sext { to, arg } => self.select_sext(v, *to, *arg),
            Inst::Trunc {
                to,
                arg,
                speculative,
            } => self.select_trunc(v, *to, *arg, *speculative),
            Inst::Load {
                width,
                addr,
                speculative,
                ..
            } => self.select_load(v, *width, *addr, *speculative),
            Inst::Store {
                width, addr, value, ..
            } => self.select_store(*width, *addr, *value),
            Inst::Select {
                width,
                cond,
                tval,
                fval,
            } => self.select_select(v, *width, *cond, *tval, *fval),
            Inst::Call { callee, args, ret } => {
                let mut argv = Vec::new();
                for &a in args {
                    match self.val_of(a) {
                        Val::W(r) => argv.push(r),
                        Val::Pair(lo, hi) => {
                            argv.push(lo);
                            argv.push(hi);
                        }
                        Val::B(s) => {
                            let t = self.new_vreg(RegClass::Word);
                            self.emit(MirInst::SExtend {
                                rd: t,
                                bn: s,
                                signed: false,
                            });
                            argv.push(t);
                        }
                    }
                }
                let rets = match ret {
                    None => vec![],
                    Some(Width::W64) => {
                        let Val::Pair(lo, hi) = self.val_of(v) else {
                            unreachable!()
                        };
                        vec![lo, hi]
                    }
                    Some(Width::W8) if self.opts.bitspec => {
                        let t = self.new_vreg(RegClass::Word);
                        vec![t]
                    }
                    Some(_) => vec![self.word_of(v)],
                };
                let byte_ret = matches!(ret, Some(Width::W8)) && self.opts.bitspec;
                let t0 = rets.first().copied();
                self.emit(MirInst::Call {
                    callee: *callee,
                    args: argv,
                    rets,
                });
                if byte_ret {
                    let s = self.byte_of(v);
                    self.emit(MirInst::STrunc {
                        bd: s,
                        rn: t0.unwrap(),
                        speculative: false,
                    });
                }
            }
            Inst::Phi { .. } => unreachable!("φ handled via edge copies"),
            Inst::Output { value } => {
                let rn = self.word_of(*value);
                self.emit(MirInst::Out { rn });
            }
        }
    }

    fn select_bin(
        &mut self,
        v: ValueId,
        op: BinOp,
        width: Width,
        lhs: ValueId,
        rhs: ValueId,
        speculative: bool,
    ) {
        match width {
            Width::W8 if self.opts.bitspec => {
                let sop = match op {
                    BinOp::Add => SAluOp::Add,
                    BinOp::Sub => SAluOp::Sub,
                    BinOp::And => SAluOp::And,
                    BinOp::Or => SAluOp::Orr,
                    BinOp::Xor => SAluOp::Eor,
                    BinOp::Shl => SAluOp::Lsl,
                    BinOp::Lshr => SAluOp::Lsr,
                    BinOp::Ashr => SAluOp::Asr,
                    _ => {
                        // No slice form: extend, do word op, truncate back.
                        return self.bin_via_word(v, op, lhs, rhs);
                    }
                };
                let bd = self.byte_of(v);
                let bn = self.byte_of(lhs);
                let src2 = self.byte_operand(rhs);
                self.emit(MirInst::SAlu {
                    op: sop,
                    bd,
                    bn,
                    src2,
                    speculative,
                });
            }
            Width::W64 => self.select_bin64(v, op, lhs, rhs),
            _ => {
                debug_assert!(!speculative, "speculative ops are 8-bit");
                self.select_bin_word(v, op, width, lhs, rhs);
            }
        }
    }

    /// W8 op with no slice form (mul/div/rem): via word registers.
    fn bin_via_word(&mut self, v: ValueId, op: BinOp, lhs: ValueId, rhs: ValueId) {
        let wl = self.new_vreg(RegClass::Word);
        let wr = self.new_vreg(RegClass::Word);
        let bl = self.byte_of(lhs);
        let br = self.byte_of(rhs);
        self.emit(MirInst::SExtend {
            rd: wl,
            bn: bl,
            signed: false,
        });
        self.emit(MirInst::SExtend {
            rd: wr,
            bn: br,
            signed: false,
        });
        let wt = self.new_vreg(RegClass::Word);
        self.emit_word_bin(wt, op, Width::W8, wl, MOperand::VReg(wr));
        let bd = self.byte_of(v);
        self.emit(MirInst::STrunc {
            bd,
            rn: wt,
            speculative: false,
        });
    }

    fn select_bin_word(&mut self, v: ValueId, op: BinOp, width: Width, lhs: ValueId, rhs: ValueId) {
        let rd = self.word_of(v);
        let rn = self.word_of(lhs);
        let src2 = self.word_operand(rhs);
        self.emit_word_bin_into(rd, op, width, rn, src2);
    }

    fn emit_word_bin(&mut self, rd: VReg, op: BinOp, width: Width, rn: VReg, src2: MOperand) {
        self.emit_word_bin_into(rd, op, width, rn, src2);
    }

    /// Emits a word binary op with sub-word canonicalization (results of
    /// W8/W16 arithmetic are re-zero-extended so the canonical invariant
    /// holds).
    fn emit_word_bin_into(&mut self, rd: VReg, op: BinOp, width: Width, rn: VReg, src2: MOperand) {
        let narrow = match width {
            Width::W8 => Some(MemWidth::B),
            Width::W16 => Some(MemWidth::H),
            _ => None,
        };
        let aop = match op {
            BinOp::Add => AluOp::Add,
            BinOp::Sub => AluOp::Sub,
            BinOp::Mul => AluOp::Mul,
            BinOp::And => AluOp::And,
            BinOp::Or => AluOp::Orr,
            BinOp::Xor => AluOp::Eor,
            BinOp::Shl => AluOp::Lsl,
            BinOp::Lshr => AluOp::Lsr,
            BinOp::Ashr => AluOp::Asr,
            BinOp::Udiv => AluOp::Udiv,
            BinOp::Sdiv => AluOp::Sdiv,
            BinOp::Urem | BinOp::Srem => {
                // rem = a - (a / b) * b
                let q = self.new_vreg(RegClass::Word);
                let (rn2, rm2) = self.signed_fixup(op == BinOp::Srem, width, rn, src2);
                self.emit(MirInst::Alu {
                    op: if op == BinOp::Srem {
                        AluOp::Sdiv
                    } else {
                        AluOp::Udiv
                    },
                    rd: q,
                    rn: rn2,
                    src2: rm2,
                });
                let t = self.new_vreg(RegClass::Word);
                self.emit(MirInst::Alu {
                    op: AluOp::Mul,
                    rd: t,
                    rn: q,
                    src2: rm2,
                });
                self.emit(MirInst::Alu {
                    op: AluOp::Sub,
                    rd,
                    rn: rn2,
                    src2: MOperand::VReg(t),
                });
                self.canonicalize(rd, narrow);
                return;
            }
        };
        // Signed narrow ops need sign-extended inputs.
        let needs_sext = narrow.is_some() && matches!(op, BinOp::Ashr | BinOp::Sdiv);
        let (rn, src2) = if needs_sext {
            self.signed_fixup(true, width, rn, src2)
        } else {
            (rn, src2)
        };
        self.emit(MirInst::Alu {
            op: aop,
            rd,
            rn,
            src2,
        });
        // Canonicalize results that can overflow the sub-word range.
        if narrow.is_some()
            && matches!(
                op,
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Shl | BinOp::Ashr | BinOp::Sdiv
            )
        {
            self.canonicalize(rd, narrow);
        }
    }

    /// For signed narrow operations: sign-extend the canonical inputs.
    fn signed_fixup(
        &mut self,
        signed: bool,
        width: Width,
        rn: VReg,
        src2: MOperand,
    ) -> (VReg, MOperand) {
        let from = match width {
            Width::W8 => MemWidth::B,
            Width::W16 => MemWidth::H,
            _ => return (rn, src2),
        };
        if !signed {
            return (rn, src2);
        }
        let a = self.new_vreg(RegClass::Word);
        self.emit(MirInst::Extend {
            rd: a,
            rm: rn,
            from,
            signed: true,
        });
        let s2 = match src2 {
            MOperand::VReg(r) => {
                let b2 = self.new_vreg(RegClass::Word);
                self.emit(MirInst::Extend {
                    rd: b2,
                    rm: r,
                    from,
                    signed: true,
                });
                MOperand::VReg(b2)
            }
            imm => imm,
        };
        (a, s2)
    }

    fn canonicalize(&mut self, rd: VReg, narrow: Option<MemWidth>) {
        if let Some(w) = narrow {
            self.emit(MirInst::Extend {
                rd,
                rm: rd,
                from: w,
                signed: false,
            });
        }
    }

    fn select_bin64(&mut self, v: ValueId, op: BinOp, lhs: ValueId, rhs: ValueId) {
        let Val::Pair(dlo, dhi) = self.val_of(v) else {
            unreachable!()
        };
        let Val::Pair(alo, ahi) = self.val_of(lhs) else {
            unreachable!()
        };
        match op {
            BinOp::Add | BinOp::Sub => {
                let Val::Pair(blo, bhi) = self.val_of(rhs) else {
                    unreachable!()
                };
                let (o1, o2) = if op == BinOp::Add {
                    (AluOp::Adds, AluOp::Adc)
                } else {
                    (AluOp::Subs, AluOp::Sbc)
                };
                self.emit(MirInst::Alu {
                    op: o1,
                    rd: dlo,
                    rn: alo,
                    src2: MOperand::VReg(blo),
                });
                self.emit(MirInst::Alu {
                    op: o2,
                    rd: dhi,
                    rn: ahi,
                    src2: MOperand::VReg(bhi),
                });
            }
            BinOp::And | BinOp::Or | BinOp::Xor => {
                let Val::Pair(blo, bhi) = self.val_of(rhs) else {
                    unreachable!()
                };
                let aop = match op {
                    BinOp::And => AluOp::And,
                    BinOp::Or => AluOp::Orr,
                    _ => AluOp::Eor,
                };
                self.emit(MirInst::Alu {
                    op: aop,
                    rd: dlo,
                    rn: alo,
                    src2: MOperand::VReg(blo),
                });
                self.emit(MirInst::Alu {
                    op: aop,
                    rd: dhi,
                    rn: ahi,
                    src2: MOperand::VReg(bhi),
                });
            }
            BinOp::Mul => {
                let Val::Pair(blo, bhi) = self.val_of(rhs) else {
                    unreachable!()
                };
                // d = a * b (low 64): umull + cross terms.
                let t1 = self.new_vreg(RegClass::Word);
                let t2 = self.new_vreg(RegClass::Word);
                self.emit(MirInst::Umull {
                    rdlo: dlo,
                    rdhi: t1,
                    rn: alo,
                    rm: blo,
                });
                self.emit(MirInst::Alu {
                    op: AluOp::Mul,
                    rd: t2,
                    rn: alo,
                    src2: MOperand::VReg(bhi),
                });
                let t3 = self.new_vreg(RegClass::Word);
                self.emit(MirInst::Alu {
                    op: AluOp::Mul,
                    rd: t3,
                    rn: ahi,
                    src2: MOperand::VReg(blo),
                });
                let t4 = self.new_vreg(RegClass::Word);
                self.emit(MirInst::Alu {
                    op: AluOp::Add,
                    rd: t4,
                    rn: t1,
                    src2: MOperand::VReg(t2),
                });
                self.emit(MirInst::Alu {
                    op: AluOp::Add,
                    rd: dhi,
                    rn: t4,
                    src2: MOperand::VReg(t3),
                });
            }
            BinOp::Shl | BinOp::Lshr | BinOp::Ashr => {
                let Inst::Const { value: k, .. } = self.f.inst(rhs) else {
                    panic!(
                        "64-bit variable-amount shifts are unsupported (see DESIGN.md); \
                         function `{}`",
                        self.f.name
                    );
                };
                self.shift64_const(op, dlo, dhi, alo, ahi, (*k).min(64) as u32);
            }
            _ => panic!(
                "64-bit {op:?} is unsupported by the back-end (see DESIGN.md); function `{}`",
                self.f.name
            ),
        }
    }

    fn shift64_const(&mut self, op: BinOp, dlo: VReg, dhi: VReg, alo: VReg, ahi: VReg, k: u32) {
        let imm = |k: u32| MOperand::Imm(k);
        match (op, k) {
            (_, 0) => {
                self.emit(MirInst::Mov { rd: dlo, rm: alo });
                self.emit(MirInst::Mov { rd: dhi, rm: ahi });
            }
            (BinOp::Shl, k) if k < 32 => {
                // dhi = (ahi << k) | (alo >> (32-k)); dlo = alo << k
                let t1 = self.new_vreg(RegClass::Word);
                let t2 = self.new_vreg(RegClass::Word);
                self.emit(MirInst::Alu {
                    op: AluOp::Lsl,
                    rd: t1,
                    rn: ahi,
                    src2: imm(k),
                });
                self.emit(MirInst::Alu {
                    op: AluOp::Lsr,
                    rd: t2,
                    rn: alo,
                    src2: imm(32 - k),
                });
                self.emit(MirInst::Alu {
                    op: AluOp::Orr,
                    rd: dhi,
                    rn: t1,
                    src2: MOperand::VReg(t2),
                });
                self.emit(MirInst::Alu {
                    op: AluOp::Lsl,
                    rd: dlo,
                    rn: alo,
                    src2: imm(k),
                });
            }
            (BinOp::Shl, k) => {
                self.emit(MirInst::Alu {
                    op: AluOp::Lsl,
                    rd: dhi,
                    rn: alo,
                    src2: imm((k - 32).min(31)),
                });
                if k >= 64 {
                    self.emit(MirInst::MovImm { rd: dhi, imm: 0 });
                }
                self.emit(MirInst::MovImm { rd: dlo, imm: 0 });
            }
            (BinOp::Lshr, k) if k < 32 => {
                let t1 = self.new_vreg(RegClass::Word);
                let t2 = self.new_vreg(RegClass::Word);
                self.emit(MirInst::Alu {
                    op: AluOp::Lsr,
                    rd: t1,
                    rn: alo,
                    src2: imm(k),
                });
                self.emit(MirInst::Alu {
                    op: AluOp::Lsl,
                    rd: t2,
                    rn: ahi,
                    src2: imm(32 - k),
                });
                self.emit(MirInst::Alu {
                    op: AluOp::Orr,
                    rd: dlo,
                    rn: t1,
                    src2: MOperand::VReg(t2),
                });
                self.emit(MirInst::Alu {
                    op: AluOp::Lsr,
                    rd: dhi,
                    rn: ahi,
                    src2: imm(k),
                });
            }
            (BinOp::Lshr, k) => {
                self.emit(MirInst::Alu {
                    op: AluOp::Lsr,
                    rd: dlo,
                    rn: ahi,
                    src2: imm((k - 32).min(31)),
                });
                if k >= 64 {
                    self.emit(MirInst::MovImm { rd: dlo, imm: 0 });
                }
                self.emit(MirInst::MovImm { rd: dhi, imm: 0 });
            }
            (BinOp::Ashr, k) if k < 32 => {
                let t1 = self.new_vreg(RegClass::Word);
                let t2 = self.new_vreg(RegClass::Word);
                self.emit(MirInst::Alu {
                    op: AluOp::Lsr,
                    rd: t1,
                    rn: alo,
                    src2: imm(k),
                });
                self.emit(MirInst::Alu {
                    op: AluOp::Lsl,
                    rd: t2,
                    rn: ahi,
                    src2: imm(32 - k),
                });
                self.emit(MirInst::Alu {
                    op: AluOp::Orr,
                    rd: dlo,
                    rn: t1,
                    src2: MOperand::VReg(t2),
                });
                self.emit(MirInst::Alu {
                    op: AluOp::Asr,
                    rd: dhi,
                    rn: ahi,
                    src2: imm(k),
                });
            }
            (BinOp::Ashr, k) => {
                self.emit(MirInst::Alu {
                    op: AluOp::Asr,
                    rd: dlo,
                    rn: ahi,
                    src2: imm((k - 32).min(31)),
                });
                self.emit(MirInst::Alu {
                    op: AluOp::Asr,
                    rd: dhi,
                    rn: ahi,
                    src2: imm(31),
                });
            }
            _ => unreachable!(),
        }
    }

    fn select_zext(&mut self, v: ValueId, to: Width, arg: ValueId) {
        let src = self.val_of(arg);
        match (src, self.val_of(v)) {
            (Val::B(s), Val::W(rd)) => self.emit(MirInst::SExtend {
                rd,
                bn: s,
                signed: false,
            }),
            (Val::B(s), Val::Pair(lo, hi)) => {
                self.emit(MirInst::SExtend {
                    rd: lo,
                    bn: s,
                    signed: false,
                });
                self.emit(MirInst::MovImm { rd: hi, imm: 0 });
            }
            (Val::W(r), Val::W(rd)) => {
                // Canonical storage: zext is a move.
                let _ = to;
                self.emit(MirInst::Mov { rd, rm: r });
            }
            (Val::W(r), Val::Pair(lo, hi)) => {
                self.emit(MirInst::Mov { rd: lo, rm: r });
                self.emit(MirInst::MovImm { rd: hi, imm: 0 });
            }
            other => panic!("bad zext mapping {other:?}"),
        }
    }

    fn select_sext(&mut self, v: ValueId, to: Width, arg: ValueId) {
        let from_w = self.f.value_width(arg).unwrap();
        let from = match from_w {
            Width::W1 => {
                // sext i1: 0 → 0, 1 → all-ones; lower as 0 - x.
                match self.val_of(v) {
                    Val::W(rd) => {
                        let x = self.word_of(arg);
                        let z = self.new_vreg(RegClass::Word);
                        self.emit(MirInst::MovImm { rd: z, imm: 0 });
                        self.emit(MirInst::Alu {
                            op: AluOp::Sub,
                            rd,
                            rn: z,
                            src2: MOperand::VReg(x),
                        });
                    }
                    Val::Pair(lo, hi) => {
                        let x = self.word_of(arg);
                        let z = self.new_vreg(RegClass::Word);
                        self.emit(MirInst::MovImm { rd: z, imm: 0 });
                        self.emit(MirInst::Alu {
                            op: AluOp::Sub,
                            rd: lo,
                            rn: z,
                            src2: MOperand::VReg(x),
                        });
                        self.emit(MirInst::Mov { rd: hi, rm: lo });
                    }
                    Val::B(_) => panic!("sext i1 to i8 unsupported"),
                }
                return;
            }
            Width::W8 => MemWidth::B,
            Width::W16 => MemWidth::H,
            Width::W32 => MemWidth::W,
            Width::W64 => panic!("sext from i64"),
        };
        let src_word = match self.val_of(arg) {
            Val::B(s) => {
                let t = self.new_vreg(RegClass::Word);
                self.emit(MirInst::SExtend {
                    rd: t,
                    bn: s,
                    signed: true,
                });
                t
            }
            Val::W(r) => r,
            Val::Pair(..) => unreachable!(),
        };
        match self.val_of(v) {
            Val::W(rd) => {
                if from == MemWidth::W || matches!(self.val_of(arg), Val::B(_)) {
                    self.emit(MirInst::Mov { rd, rm: src_word });
                    // A byte-slice source was sign-extended to a full
                    // 32-bit word above; a W16 destination must still be
                    // stored 16-bit-clean (canonical sub-word storage).
                    if to == Width::W16 {
                        self.canonicalize(rd, Some(MemWidth::H));
                    }
                } else {
                    self.emit(MirInst::Extend {
                        rd,
                        rm: src_word,
                        from,
                        signed: true,
                    });
                    // Canonical sub-word storage for W16 targets.
                    if to == Width::W16 {
                        self.canonicalize(rd, Some(MemWidth::H));
                    }
                }
            }
            Val::Pair(lo, hi) => {
                if from == MemWidth::W || matches!(self.val_of(arg), Val::B(_)) {
                    self.emit(MirInst::Mov {
                        rd: lo,
                        rm: src_word,
                    });
                } else {
                    self.emit(MirInst::Extend {
                        rd: lo,
                        rm: src_word,
                        from,
                        signed: true,
                    });
                }
                self.emit(MirInst::Alu {
                    op: AluOp::Asr,
                    rd: hi,
                    rn: lo,
                    src2: MOperand::Imm(31),
                });
            }
            Val::B(_) => panic!("sext into i8"),
        }
    }

    fn select_trunc(&mut self, v: ValueId, to: Width, arg: ValueId, speculative: bool) {
        let (src_lo, src_hi) = match self.val_of(arg) {
            Val::W(r) => (r, None),
            Val::Pair(lo, hi) => (lo, Some(hi)),
            Val::B(_) => panic!("trunc from i8"),
        };
        match self.val_of(v) {
            Val::B(bd) => {
                if speculative {
                    if let Some(hi) = src_hi {
                        // 64-bit source: check (lo >> 8) | hi == 0, then take
                        // the slice.
                        let t1 = self.new_vreg(RegClass::Word);
                        self.emit(MirInst::Alu {
                            op: AluOp::Lsr,
                            rd: t1,
                            rn: src_lo,
                            src2: MOperand::Imm(8),
                        });
                        let t2 = self.new_vreg(RegClass::Word);
                        self.emit(MirInst::Alu {
                            op: AluOp::Orr,
                            rd: t2,
                            rn: t1,
                            src2: MOperand::VReg(hi),
                        });
                        self.emit(MirInst::SpecCheck { rn: t2 });
                        self.emit(MirInst::STrunc {
                            bd,
                            rn: src_lo,
                            speculative: false,
                        });
                    } else {
                        self.emit(MirInst::STrunc {
                            bd,
                            rn: src_lo,
                            speculative: true,
                        });
                    }
                } else {
                    self.emit(MirInst::STrunc {
                        bd,
                        rn: src_lo,
                        speculative: false,
                    });
                }
            }
            Val::W(rd) => {
                debug_assert!(!speculative, "speculative truncs target slices");
                match to {
                    Width::W8 => self.emit(MirInst::Extend {
                        rd,
                        rm: src_lo,
                        from: MemWidth::B,
                        signed: false,
                    }),
                    Width::W16 => self.emit(MirInst::Extend {
                        rd,
                        rm: src_lo,
                        from: MemWidth::H,
                        signed: false,
                    }),
                    Width::W32 => self.emit(MirInst::Mov { rd, rm: src_lo }),
                    Width::W1 => self.emit(MirInst::Alu {
                        op: AluOp::And,
                        rd,
                        rn: src_lo,
                        src2: MOperand::Imm(1),
                    }),
                    Width::W64 => unreachable!(),
                }
            }
            Val::Pair(..) => unreachable!("trunc to i64"),
        }
    }

    /// Slice-index pattern: `zext(b)`, `zext(b) << k` (k ≤ 3) or
    /// `zext(b) * {1,2,4,8}` — Table 1's `Mem[R_n + B_m]` addressing with
    /// an AGU scale.
    fn slice_index_of(&self, v: ValueId) -> Option<(ValueId, u8)> {
        if !self.opts.bitspec {
            return None;
        }
        match self.f.inst(v) {
            Inst::Zext { arg, .. } => {
                if matches!(self.val_of(*arg), Val::B(_)) {
                    Some((*arg, 0))
                } else {
                    None
                }
            }
            Inst::Bin {
                op: BinOp::Shl,
                width: Width::W32,
                lhs,
                rhs,
                speculative: false,
            } => match (self.slice_index_of(*lhs), self.f.inst(*rhs)) {
                (Some((b, 0)), Inst::Const { value, .. }) if *value <= 3 => Some((b, *value as u8)),
                _ => None,
            },
            Inst::Bin {
                op: BinOp::Mul,
                width: Width::W32,
                lhs,
                rhs,
                speculative: false,
            } => match (self.slice_index_of(*lhs), self.f.inst(*rhs)) {
                (Some((b, 0)), Inst::Const { value, .. }) if matches!(value, 1 | 2 | 4 | 8) => {
                    Some((b, (*value as u8).trailing_zeros() as u8))
                }
                _ => None,
            },
            _ => None,
        }
    }

    /// Addressing-mode selection for loads: base+slice-index when the
    /// address is `base + scaled(zext(slice))`, else base+offset.
    fn load_addr_mode(&mut self, addr: ValueId) -> AddrMode {
        if let Inst::Bin {
            op: BinOp::Add,
            width: Width::W32,
            lhs,
            rhs,
            speculative: false,
        } = self.f.inst(addr).clone()
        {
            for (base, idx) in [(lhs, rhs), (rhs, lhs)] {
                if matches!(self.val_of(base), Val::W(_)) {
                    if let Some((b, sh)) = self.slice_index_of(idx) {
                        return AddrMode::BaseSliceIdx(self.word_of(base), self.byte_vreg(b), sh);
                    }
                }
            }
        }
        let (rn, off) = self.addr_of(addr);
        AddrMode::BaseOff(rn, off)
    }

    fn byte_vreg(&self, v: ValueId) -> VReg {
        match self.val_of(v) {
            Val::B(b) => b,
            other => panic!("expected byte value, got {other:?}"),
        }
    }

    /// Tries to fold `addr = base + const` into a load/store offset.
    fn addr_of(&mut self, addr: ValueId) -> (VReg, i32) {
        if let Inst::Bin {
            op: BinOp::Add,
            width: Width::W32,
            lhs,
            rhs,
            speculative: false,
        } = self.f.inst(addr)
        {
            if let Inst::Const { value, .. } = self.f.inst(*rhs) {
                if *value <= 4095 {
                    if let Val::W(base) = self.val_of(*lhs) {
                        return (base, *value as i32);
                    }
                }
            }
        }
        (self.word_of(addr), 0)
    }

    fn select_load(&mut self, v: ValueId, width: Width, addr: ValueId, speculative: bool) {
        let mode = self.load_addr_mode(addr);
        if let AddrMode::BaseSliceIdx(rn, bidx, shift) = mode {
            match (speculative, self.val_of(v)) {
                (true, Val::B(bd)) => {
                    self.emit(MirInst::SLoadIdx {
                        bd,
                        rn,
                        bidx,
                        shift,
                        speculative: true,
                    });
                    return;
                }
                (false, Val::B(bd)) => {
                    self.emit(MirInst::SLoadIdx {
                        bd,
                        rn,
                        bidx,
                        shift,
                        speculative: false,
                    });
                    return;
                }
                (false, Val::W(rd)) => {
                    let mw = match width {
                        Width::W1 | Width::W8 => MemWidth::B,
                        Width::W16 => MemWidth::H,
                        _ => MemWidth::W,
                    };
                    self.emit(MirInst::LoadIdx {
                        rd,
                        rn,
                        bidx,
                        shift,
                        width: mw,
                    });
                    return;
                }
                _ => {}
            }
        }
        let (rn, offset) = match mode {
            AddrMode::BaseOff(rn, off) => (rn, off),
            AddrMode::BaseSliceIdx(..) => self.addr_of(addr),
        };
        if speculative {
            let bd = self.byte_of(v);
            self.emit(MirInst::SLoadSpec { bd, rn, offset });
            return;
        }
        match self.val_of(v) {
            Val::B(bd) => self.emit(MirInst::SLoad { bd, rn, offset }),
            Val::W(rd) => {
                let mw = match width {
                    Width::W1 | Width::W8 => MemWidth::B,
                    Width::W16 => MemWidth::H,
                    _ => MemWidth::W,
                };
                self.emit(MirInst::Load {
                    rd,
                    rn,
                    offset,
                    width: mw,
                });
            }
            Val::Pair(lo, hi) => {
                self.emit(MirInst::Load {
                    rd: lo,
                    rn,
                    offset,
                    width: MemWidth::W,
                });
                self.emit(MirInst::Load {
                    rd: hi,
                    rn,
                    offset: offset + 4,
                    width: MemWidth::W,
                });
            }
        }
    }

    fn select_store(&mut self, width: Width, addr: ValueId, value: ValueId) {
        let (rn, offset) = self.addr_of(addr);
        match self.val_of(value) {
            Val::B(bs) => self.emit(MirInst::SStore { bs, rn, offset }),
            Val::W(rs) => {
                let mw = match width {
                    Width::W1 | Width::W8 => MemWidth::B,
                    Width::W16 => MemWidth::H,
                    _ => MemWidth::W,
                };
                self.emit(MirInst::Store {
                    rs,
                    rn,
                    offset,
                    width: mw,
                });
            }
            Val::Pair(lo, hi) => {
                self.emit(MirInst::Store {
                    rs: lo,
                    rn,
                    offset,
                    width: MemWidth::W,
                });
                self.emit(MirInst::Store {
                    rs: hi,
                    rn,
                    offset: offset + 4,
                    width: MemWidth::W,
                });
            }
        }
    }

    fn select_select(
        &mut self,
        v: ValueId,
        width: Width,
        cond: ValueId,
        tval: ValueId,
        fval: ValueId,
    ) {
        let c = self.word_of(cond);
        let emit_sel = |sel: &mut Self, rd: VReg, t: VReg, fv: VReg| {
            sel.emit(MirInst::Mov { rd, rm: fv });
            sel.emit(MirInst::Cmp {
                rn: c,
                src2: MOperand::Imm(1),
            });
            sel.emit(MirInst::MovCc {
                rd,
                rm: t,
                cond: Cond::Eq,
            });
        };
        match (self.val_of(v), width) {
            (Val::W(rd), _) => {
                let t = self.word_of(tval);
                let fv = self.word_of(fval);
                emit_sel(self, rd, t, fv);
            }
            (Val::Pair(lo, hi), _) => {
                let Val::Pair(tlo, thi) = self.val_of(tval) else {
                    unreachable!()
                };
                let Val::Pair(flo, fhi) = self.val_of(fval) else {
                    unreachable!()
                };
                self.emit(MirInst::Mov { rd: lo, rm: flo });
                self.emit(MirInst::Mov { rd: hi, rm: fhi });
                self.emit(MirInst::Cmp {
                    rn: c,
                    src2: MOperand::Imm(1),
                });
                self.emit(MirInst::MovCc {
                    rd: lo,
                    rm: tlo,
                    cond: Cond::Eq,
                });
                self.emit(MirInst::MovCc {
                    rd: hi,
                    rm: thi,
                    cond: Cond::Eq,
                });
            }
            (Val::B(bd), _) => {
                // Extend → word select → truncate back.
                let tb = self.byte_of(tval);
                let fb = self.byte_of(fval);
                let tw = self.new_vreg(RegClass::Word);
                let fw = self.new_vreg(RegClass::Word);
                self.emit(MirInst::SExtend {
                    rd: tw,
                    bn: tb,
                    signed: false,
                });
                self.emit(MirInst::SExtend {
                    rd: fw,
                    bn: fb,
                    signed: false,
                });
                let rw = self.new_vreg(RegClass::Word);
                emit_sel(self, rw, tw, fw);
                self.emit(MirInst::STrunc {
                    bd,
                    rn: rw,
                    speculative: false,
                });
            }
        }
    }

    /// Destructs SSA: for every edge p→s and φ in s, append ordered copies
    /// at the end of p (after any sunk compare; copies don't affect flags).
    fn insert_phi_copies(&mut self) {
        let f = self.f;
        for p in f.block_ids() {
            let succs = f.succs(p);
            for s in succs {
                let mut copies: Vec<(Val, Val)> = Vec::new(); // (dst, src)
                for &phi in &f.block(s).insts {
                    let Inst::Phi { incomings, .. } = f.inst(phi) else {
                        break;
                    };
                    let Some((_, src)) = incomings.iter().find(|(pb, _)| *pb == p) else {
                        continue;
                    };
                    copies.push((self.val_of(phi), self.val_of(*src)));
                }
                if copies.is_empty() {
                    continue;
                }
                let seq = order_copies(&copies, &mut self.classes);
                self.blocks[p.index()].insts.extend(seq);
            }
        }
    }
}

/// Expands possibly-cyclic parallel copies into a safe sequence, using a
/// fresh temp vreg per cycle.
fn order_copies(copies: &[(Val, Val)], classes: &mut Vec<RegClass>) -> Vec<MirInst> {
    // Flatten pairs into unit copies.
    let mut units: Vec<(VReg, VReg, RegClass)> = Vec::new();
    for (d, s) in copies {
        match (d, s) {
            (Val::W(d), Val::W(s)) => units.push((*d, *s, RegClass::Word)),
            (Val::B(d), Val::B(s)) => units.push((*d, *s, RegClass::Byte)),
            (Val::Pair(dl, dh), Val::Pair(sl, sh)) => {
                units.push((*dl, *sl, RegClass::Word));
                units.push((*dh, *sh, RegClass::Word));
            }
            other => panic!("φ copy class mismatch {other:?}"),
        }
    }
    let mut out = Vec::new();
    let mut pending: Vec<(VReg, VReg, RegClass)> =
        units.into_iter().filter(|(d, s, _)| d != s).collect();
    while !pending.is_empty() {
        // Emit copies whose destination is not a pending source.
        let ready: Vec<usize> = (0..pending.len())
            .filter(|&i| !pending.iter().any(|(_, s, _)| *s == pending[i].0))
            .collect();
        if ready.is_empty() {
            // Cycle: break it with a temp.
            let (d, s, class) = pending[0];
            let tmp = VReg(classes.len() as u32);
            classes.push(class);
            out.push(copy_inst(tmp, s, class));
            pending[0] = (d, tmp, class);
            // mark s as satisfied by replacing source occurrences…
            // (only the first element had source s in the cycle; others
            // unchanged — the cycle is now a chain.)
            continue;
        }
        // Remove in reverse order to keep indices valid.
        for &i in ready.iter().rev() {
            let (d, s, class) = pending.remove(i);
            out.push(copy_inst(d, s, class));
        }
    }
    out
}

fn copy_inst(d: VReg, s: VReg, class: RegClass) -> MirInst {
    match class {
        RegClass::Word => MirInst::Mov { rd: d, rm: s },
        RegClass::Byte => MirInst::SMov { bd: d, bs: s },
    }
}

/// Blocks reachable from the entry via branch edges only (the speculative
/// side of the 2-CFG; handlers and `CFG_orig` are excluded).
fn spec_side_blocks(f: &Function) -> Vec<bool> {
    let mut side = vec![false; f.blocks.len()];
    let mut work = vec![f.entry];
    side[f.entry.index()] = true;
    while let Some(b) = work.pop() {
        for s in f.succs(b) {
            if !side[s.index()] {
                side[s.index()] = true;
                work.push(s);
            }
        }
    }
    side
}

/// Maps a SIR condition code onto a machine condition.
fn cond_of(cc: Cc) -> Cond {
    match cc {
        Cc::Eq => Cond::Eq,
        Cc::Ne => Cond::Ne,
        Cc::Ult => Cond::Lo,
        Cc::Ule => Cond::Ls,
        Cc::Ugt => Cond::Hi,
        Cc::Uge => Cond::Hs,
        Cc::Slt => Cond::Lt,
        Cc::Sle => Cond::Le,
        Cc::Sgt => Cond::Gt,
        Cc::Sge => Cond::Ge,
    }
}

/// Argument word slots for a width.
fn word_slots(w: Width) -> u32 {
    if w == Width::W64 {
        2
    } else {
        1
    }
}

/// Removes MIR instructions with unused defs and no side effects.
fn mir_dce(f: &mut MirFunction) {
    loop {
        let mut used = vec![false; f.classes.len()];
        for b in &f.blocks {
            for i in &b.insts {
                for u in i.uses() {
                    used[u.index()] = true;
                }
            }
            for u in b.term.uses() {
                used[u.index()] = true;
            }
        }
        let mut removed = false;
        for b in &mut f.blocks {
            let before = b.insts.len();
            b.insts.retain(|i| {
                i.has_side_effects()
                    || i.defs().is_empty()
                    || i.defs().iter().any(|d| used[d.index()])
            });
            removed |= b.insts.len() != before;
        }
        if !removed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mir_for(src: &str, func: &str, opts: &CodegenOpts) -> MirFunction {
        let mut m = lang::compile("t", src).unwrap();
        opt::simplify::run(&mut m); // fold constant address arithmetic
        opt::dce::run(&mut m);
        let fid = m.func_by_name(func).unwrap();
        let layout = Layout::new(&m);
        select_function(&m, fid, &layout, opts)
    }

    #[test]
    fn simple_add_selects_alu() {
        let f = mir_for(
            "u32 f(u32 a, u32 b) { return a + b; }",
            "f",
            &CodegenOpts::default(),
        );
        let has_add = f.blocks.iter().any(|b| {
            b.insts
                .iter()
                .any(|i| matches!(i, MirInst::Alu { op: AluOp::Add, .. }))
        });
        assert!(has_add);
    }

    #[test]
    fn small_const_folds_into_imm() {
        let f = mir_for(
            "u32 f(u32 a) { return a + 7; }",
            "f",
            &CodegenOpts::default(),
        );
        let folded = f.blocks.iter().any(|b| {
            b.insts.iter().any(|i| {
                matches!(
                    i,
                    MirInst::Alu {
                        src2: MOperand::Imm(7),
                        ..
                    }
                )
            })
        });
        assert!(folded);
    }

    #[test]
    fn branch_fusion_avoids_cset() {
        let f = mir_for(
            "u32 f(u32 a) { if (a < 3) { return 1; } return 2; }",
            "f",
            &CodegenOpts::default(),
        );
        let csets = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, MirInst::CSet { .. }))
            .count();
        assert_eq!(csets, 0, "compare should fuse into the branch");
    }

    #[test]
    fn load_offset_folding() {
        let f = mir_for(
            "global u32 g[8]; u32 f() { return g[2]; }",
            "f",
            &CodegenOpts::default(),
        );
        let has_folded = f.blocks.iter().any(|b| {
            b.insts
                .iter()
                .any(|i| matches!(i, MirInst::Load { offset, .. } if *offset == 8))
        });
        assert!(has_folded, "constant index should fold into the offset");
    }

    #[test]
    fn u64_add_uses_carry_chain() {
        let f = mir_for(
            "u64 f(u64 a, u64 b) { return a + b; }",
            "f",
            &CodegenOpts::default(),
        );
        let insts: Vec<&MirInst> = f.blocks.iter().flat_map(|b| &b.insts).collect();
        assert!(insts.iter().any(|i| matches!(
            i,
            MirInst::Alu {
                op: AluOp::Adds,
                ..
            }
        )));
        assert!(insts
            .iter()
            .any(|i| matches!(i, MirInst::Alu { op: AluOp::Adc, .. })));
    }

    #[test]
    fn critical_edges_split_for_phis() {
        // Loop header with φ and conditional latch creates a critical edge.
        let src = "u32 f(u32 n) {
            u32 s = 0;
            for (u32 i = 0; i < n; i++) { if (i & 1) { s += i; } }
            return s;
        }";
        let f = mir_for(src, "f", &CodegenOpts::default());
        // Just ensure selection completed and produced blocks.
        assert!(f.blocks.len() >= 4);
    }

    #[test]
    fn compact_mode_rejects_bitspec() {
        let r = std::panic::catch_unwind(|| {
            mir_for(
                "u32 f() { return 1; }",
                "f",
                &CodegenOpts {
                    bitspec: true,
                    compact: true,
                    spill_prefer_orig: true,
                },
            )
        });
        assert!(r.is_err());
    }
}
