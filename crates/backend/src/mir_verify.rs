//! SMIR verifier — machine-IR counterpart of `sir::verify`.
//!
//! Runs after instruction selection (`verify_mir`) and again after register
//! allocation (`verify_allocated`), checking the invariants the emitter and
//! the §3.3.4 layout rely on:
//!
//! * every vreg is defined before use on all paths, including misspeculation
//!   edges into handlers (`MIR-UNDEF`, a forward dataflow over the 2-CFG);
//! * every operand position carries a vreg of the expected register class —
//!   no wide read of a slice-defined register without an `SExtend`
//!   (`MIR-CLASS`);
//! * region/handler cross-references are consistent, region blocks sit on
//!   the speculative side, and every misspeculation-capable instruction is
//!   covered by a region (`MIR-REGION`);
//! * after allocation, locations agree with classes and the block order
//!   keeps the spec segment a contiguous prefix (`MIR-LOC`, `MIR-REGION`).

use crate::mir::{
    MBlockId, MOperand, MirFunction, MirInst, MirTerm, RegClass, SAluOp, SMOperand, VReg,
};
use crate::regalloc::{AllocatedFn, Loc};
use sir::dataflow::{self, Analysis, Direction, Graph};
use sir::Diag;

/// Pass name used in every diagnostic this module emits.
pub const PASS: &str = "mir-verify";

/// [`Graph`] over a MIR function's CFG with misspeculation edges included,
/// so definedness facts reach handlers conservatively.
impl Graph for MirFunction {
    fn num_nodes(&self) -> usize {
        self.blocks.len()
    }

    fn entry(&self) -> usize {
        self.entry.index()
    }

    fn succs(&self, n: usize) -> Vec<usize> {
        self.spec_succs(MBlockId(n as u32))
            .into_iter()
            .map(|b| b.index())
            .collect()
    }
}

/// Whether a MIR instruction can trigger misspeculation (mirrors
/// [`isa::MInst::can_misspeculate`] one level up).
pub fn can_misspeculate(i: &MirInst) -> bool {
    match i {
        MirInst::SAlu {
            op, speculative, ..
        } => *speculative && matches!(op, SAluOp::Add | SAluOp::Sub | SAluOp::Lsl),
        MirInst::SLoadSpec { .. } => true,
        MirInst::SLoadIdx { speculative, .. } | MirInst::STrunc { speculative, .. } => *speculative,
        MirInst::SpecCheck { .. } => true,
        _ => false,
    }
}

/// Definitely-defined vregs, as a forward intersection dataflow: a vreg is
/// defined at a point iff it is defined on *every* path reaching it. Facts
/// are word-packed bitsets over vreg indices (bit set = defined).
struct Defined {
    nwords: usize,
}

impl Analysis<MirFunction> for Defined {
    type Fact = Vec<u64>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self, _g: &MirFunction) -> Vec<u64> {
        vec![0; self.nwords]
    }

    fn init(&self, _g: &MirFunction, _n: usize) -> Vec<u64> {
        // Optimistic top for an intersection join: everything defined.
        vec![!0; self.nwords]
    }

    fn join(&self, into: &mut Vec<u64>, from: &Vec<u64>) -> bool {
        let mut changed = false;
        for (a, b) in into.iter_mut().zip(from) {
            let next = *a & *b;
            if next != *a {
                *a = next;
                changed = true;
            }
        }
        changed
    }

    fn transfer(&self, g: &MirFunction, n: usize, input: &Vec<u64>) -> Vec<u64> {
        let mut out = input.clone();
        for i in &g.blocks[n].insts {
            for d in i.defs() {
                out[d.index() >> 6] |= 1u64 << (d.index() & 63);
            }
        }
        out
    }
}

/// Expected register class for every vreg operand of `i`, as
/// `(vreg, class, role)` triples covering both uses and defs.
fn operand_classes(i: &MirInst) -> Vec<(VReg, RegClass, &'static str)> {
    use RegClass::{Byte, Word};
    let mut out: Vec<(VReg, RegClass, &'static str)> = Vec::new();
    let word = |out: &mut Vec<_>, v: VReg, role| out.push((v, Word, role));
    let byte = |out: &mut Vec<_>, v: VReg, role| out.push((v, Byte, role));
    match i {
        MirInst::Alu { rd, rn, src2, .. } => {
            word(&mut out, *rd, "rd");
            word(&mut out, *rn, "rn");
            if let MOperand::VReg(v) = src2 {
                word(&mut out, *v, "src2");
            }
        }
        MirInst::MovImm { rd, .. } | MirInst::CSet { rd, .. } => word(&mut out, *rd, "rd"),
        MirInst::Mov { rd, rm } | MirInst::MovCc { rd, rm, .. } => {
            word(&mut out, *rd, "rd");
            word(&mut out, *rm, "rm");
        }
        MirInst::Cmp { rn, src2 } => {
            word(&mut out, *rn, "rn");
            if let MOperand::VReg(v) = src2 {
                word(&mut out, *v, "src2");
            }
        }
        MirInst::Extend { rd, rm, .. } => {
            word(&mut out, *rd, "rd");
            word(&mut out, *rm, "rm");
        }
        MirInst::Umull { rdlo, rdhi, rn, rm } => {
            word(&mut out, *rdlo, "rdlo");
            word(&mut out, *rdhi, "rdhi");
            word(&mut out, *rn, "rn");
            word(&mut out, *rm, "rm");
        }
        MirInst::Load { rd, rn, .. } => {
            word(&mut out, *rd, "rd");
            word(&mut out, *rn, "rn");
        }
        MirInst::LoadIdx { rd, rn, bidx, .. } => {
            word(&mut out, *rd, "rd");
            word(&mut out, *rn, "rn");
            byte(&mut out, *bidx, "bidx");
        }
        MirInst::SLoadIdx { bd, rn, bidx, .. } => {
            byte(&mut out, *bd, "bd");
            word(&mut out, *rn, "rn");
            byte(&mut out, *bidx, "bidx");
        }
        MirInst::Store { rs, rn, .. } => {
            word(&mut out, *rs, "rs");
            word(&mut out, *rn, "rn");
        }
        MirInst::GlobalAddr { rd, .. }
        | MirInst::FrameAddr { rd, .. }
        | MirInst::GetParam { rd, .. } => word(&mut out, *rd, "rd"),
        MirInst::Call { args, rets, .. } => {
            for a in args {
                word(&mut out, *a, "arg");
            }
            for r in rets {
                word(&mut out, *r, "ret");
            }
        }
        MirInst::Out { rn } | MirInst::SpecCheck { rn } => word(&mut out, *rn, "rn"),
        MirInst::SAlu { bd, bn, src2, .. } => {
            byte(&mut out, *bd, "bd");
            byte(&mut out, *bn, "bn");
            if let SMOperand::VReg(v) = src2 {
                byte(&mut out, *v, "src2");
            }
        }
        MirInst::SCmp { bn, src2 } => {
            byte(&mut out, *bn, "bn");
            if let SMOperand::VReg(v) = src2 {
                byte(&mut out, *v, "src2");
            }
        }
        MirInst::SLoadSpec { bd, rn, .. } | MirInst::SLoad { bd, rn, .. } => {
            byte(&mut out, *bd, "bd");
            word(&mut out, *rn, "rn");
        }
        MirInst::SStore { bs, rn, .. } => {
            byte(&mut out, *bs, "bs");
            word(&mut out, *rn, "rn");
        }
        MirInst::SExtend { rd, bn, .. } => {
            word(&mut out, *rd, "rd");
            byte(&mut out, *bn, "bn");
        }
        MirInst::STrunc { bd, rn, .. } => {
            byte(&mut out, *bd, "bd");
            word(&mut out, *rn, "rn");
        }
        MirInst::SMov { bd, bs } => {
            byte(&mut out, *bd, "bd");
            byte(&mut out, *bs, "bs");
        }
        MirInst::SMovImm { bd, .. } => byte(&mut out, *bd, "bd"),
    }
    out
}

/// Verifies a post-isel MIR function. Returns diagnostics (empty = clean).
pub fn verify_mir(f: &MirFunction) -> Vec<Diag> {
    let mut problems = Vec::new();
    check_classes(f, &mut problems);
    check_regions(f, &mut problems);
    check_defined(f, &mut problems);
    problems
}

/// Verifies an allocated function: MIR invariants must still hold, every
/// location must agree with its vreg's class, and the layout order must keep
/// the spec segment contiguous.
pub fn verify_allocated(a: &AllocatedFn) -> Vec<Diag> {
    let mut problems = verify_mir(&a.mir);
    check_locs(a, &mut problems);
    check_order(a, &mut problems);
    problems
}

fn diag(f: &MirFunction, rule: &'static str, loc: impl ToString, msg: impl Into<String>) -> Diag {
    Diag::new(rule, PASS, f.name.clone(), loc, msg)
}

fn check_classes(f: &MirFunction, problems: &mut Vec<Diag>) {
    for b in f.block_ids() {
        for (ii, inst) in f.block(b).insts.iter().enumerate() {
            for (v, expected, role) in operand_classes(inst) {
                if v.index() >= f.classes.len() {
                    problems.push(diag(
                        f,
                        "MIR-CLASS",
                        format!("{b:?}[{ii}]"),
                        format!("{v:?} ({role}) has no class entry"),
                    ));
                } else if f.class_of(v) != expected {
                    problems.push(diag(
                        f,
                        "MIR-CLASS",
                        format!("{b:?}[{ii}]"),
                        format!(
                            "{v:?} ({role}) is {:?} but position requires {expected:?}",
                            f.class_of(v)
                        ),
                    ));
                }
            }
        }
        if let MirTerm::Ret(vals) = &f.block(b).term {
            for v in vals {
                if v.index() >= f.classes.len() || f.class_of(*v) != RegClass::Word {
                    problems.push(diag(
                        f,
                        "MIR-CLASS",
                        format!("{b:?}"),
                        format!("return value {v:?} must be Word (extend slices before return)"),
                    ));
                }
            }
        }
    }
}

fn check_regions(f: &MirFunction, problems: &mut Vec<Diag>) {
    // Region tables and block annotations must cross-reference exactly.
    for (ri, (members, handler)) in f.regions.iter().enumerate() {
        for &m in members {
            if m.index() >= f.blocks.len() {
                problems.push(diag(
                    f,
                    "MIR-REGION",
                    format!("{m:?}"),
                    format!("region {ri} member out of range"),
                ));
                continue;
            }
            if f.block(m).region != Some(ri as u32) {
                problems.push(diag(
                    f,
                    "MIR-REGION",
                    format!("{m:?}"),
                    format!(
                        "listed in region {ri} but annotated {:?}",
                        f.block(m).region
                    ),
                ));
            }
            if !f.block(m).spec_side {
                problems.push(diag(
                    f,
                    "MIR-REGION",
                    format!("{m:?}"),
                    format!("region {ri} member is not on the speculative side"),
                ));
            }
        }
        if handler.index() >= f.blocks.len() {
            problems.push(diag(
                f,
                "MIR-REGION",
                format!("{handler:?}"),
                format!("region {ri} handler out of range"),
            ));
        } else {
            if f.block(*handler).handler_for != Some(ri as u32) {
                problems.push(diag(
                    f,
                    "MIR-REGION",
                    format!("{handler:?}"),
                    format!(
                        "handler of region {ri} annotated handler_for {:?}",
                        f.block(*handler).handler_for
                    ),
                ));
            }
            if f.block(*handler).spec_side {
                problems.push(diag(
                    f,
                    "MIR-REGION",
                    format!("{handler:?}"),
                    format!("handler of region {ri} must not be on the speculative side"),
                ));
            }
        }
    }
    for b in f.block_ids() {
        if let Some(r) = f.block(b).region {
            if r as usize >= f.regions.len() {
                problems.push(diag(
                    f,
                    "MIR-REGION",
                    format!("{b:?}"),
                    format!("block annotated with unknown region {r}"),
                ));
            } else if !f.regions[r as usize].0.contains(&b) {
                problems.push(diag(
                    f,
                    "MIR-REGION",
                    format!("{b:?}"),
                    format!("annotated region {r} but absent from its member list"),
                ));
            }
        }
        if let Some(r) = f.block(b).handler_for {
            if r as usize >= f.regions.len() || f.regions[r as usize].1 != b {
                problems.push(diag(
                    f,
                    "MIR-REGION",
                    format!("{b:?}"),
                    format!("annotated handler_for {r} but region disagrees"),
                ));
            }
        }
        // Every misspeculation-capable instruction needs a covering region,
        // or the skeleton has no branch slot for it and a misspeculation
        // would land on a NOP (or worse).
        if f.block(b).region.is_none() {
            for (ii, inst) in f.block(b).insts.iter().enumerate() {
                if can_misspeculate(inst) {
                    problems.push(diag(
                        f,
                        "MIR-REGION",
                        format!("{b:?}[{ii}]"),
                        "misspeculation-capable instruction outside any region",
                    ));
                }
            }
        }
    }
}

fn check_defined(f: &MirFunction, problems: &mut Vec<Diag>) {
    let nvregs = f.classes.len();
    let sol = dataflow::solve(
        f,
        &Defined {
            nwords: nvregs.div_ceil(64),
        },
    );
    for b in f.block_ids() {
        let mut defined = sol.input[b.index()].clone();
        // Locations are formatted lazily: this loop runs per instruction on
        // every (usually clean) function.
        let mut check = |uses: Vec<VReg>, defined: &[u64], ii: Option<usize>| {
            for u in uses {
                if u.index() >= nvregs || defined[u.index() >> 6] >> (u.index() & 63) & 1 == 0 {
                    let loc = match ii {
                        Some(i) => format!("{b:?}[{i}]"),
                        None => format!("{b:?}"),
                    };
                    problems.push(Diag::new(
                        "MIR-UNDEF",
                        PASS,
                        f.name.clone(),
                        loc,
                        format!("{u:?} used before definition"),
                    ));
                }
            }
        };
        for (ii, inst) in f.block(b).insts.iter().enumerate() {
            check(inst.uses(), &defined, Some(ii));
            for d in inst.defs() {
                if d.index() < nvregs {
                    defined[d.index() >> 6] |= 1u64 << (d.index() & 63);
                }
            }
        }
        check(f.block(b).term.uses(), &defined, None);
    }
}

fn check_locs(a: &AllocatedFn, problems: &mut Vec<Diag>) {
    let f = &a.mir;
    if a.locs.len() < f.classes.len() {
        problems.push(diag(
            f,
            "MIR-LOC",
            "fn",
            format!(
                "{} vregs but only {} locations",
                f.classes.len(),
                a.locs.len()
            ),
        ));
        return;
    }
    for (vi, class) in f.classes.iter().enumerate() {
        let loc = a.locs[vi];
        // `Spill(u32::MAX)` is the allocator's "never allocated" sentinel
        // for dead vregs; it carries no class.
        if loc == Loc::Spill(u32::MAX) {
            continue;
        }
        let ok = match class {
            RegClass::Word => matches!(loc, Loc::Reg(_) | Loc::WriteThrough { .. } | Loc::Spill(_)),
            RegClass::Byte => matches!(
                loc,
                Loc::Slice(_) | Loc::WriteThroughSlice { .. } | Loc::Spill(_)
            ),
        };
        if !ok {
            problems.push(diag(
                f,
                "MIR-LOC",
                format!("v{vi}"),
                format!("{class:?} vreg assigned incompatible location {loc:?}"),
            ));
        }
    }
}

fn check_order(a: &AllocatedFn, problems: &mut Vec<Diag>) {
    let f = &a.mir;
    let mut seen = vec![0u32; f.blocks.len()];
    for &b in &a.order {
        if b.index() >= f.blocks.len() {
            problems.push(diag(
                f,
                "MIR-REGION",
                format!("{b:?}"),
                "order names unknown block",
            ));
            return;
        }
        seen[b.index()] += 1;
    }
    for (bi, &count) in seen.iter().enumerate() {
        if count != 1 {
            problems.push(diag(
                f,
                "MIR-REGION",
                format!("mb{bi}"),
                format!("block appears {count} times in layout order (want exactly 1)"),
            ));
        }
    }
    // The emitter takes the leading run of spec-side blocks as the spec
    // segment; a spec block after the first non-spec block would escape the
    // skeleton mirror entirely.
    let spec_count = a
        .order
        .iter()
        .take_while(|b| f.block(**b).spec_side)
        .count();
    for &b in a.order.iter().skip(spec_count) {
        if f.block(b).spec_side {
            problems.push(diag(
                f,
                "MIR-REGION",
                format!("{b:?}"),
                "speculative-side block laid out after the spec segment",
            ));
        }
    }
    if !a.order.is_empty() && a.order[0] != f.entry {
        problems.push(diag(
            f,
            "MIR-REGION",
            format!("{:?}", a.order[0]),
            "layout order must start at the entry block",
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isel::CodegenOpts;
    use crate::{isel, regalloc};

    /// Compiles `src` (squeezing when `opts.bitspec`) into allocated functions.
    fn allocated(src: &str, opts: &CodegenOpts) -> Vec<AllocatedFn> {
        let mut m = lang::compile("t", src).unwrap();
        if opts.bitspec {
            let mut i = interp::Interpreter::new(&m);
            i.enable_profiling();
            i.run("main", &[]).unwrap();
            let profile = i.take_profile().unwrap();
            opt::squeeze_module(
                &mut m,
                &profile,
                &opt::SqueezeConfig {
                    heuristic: interp::Heuristic::Max,
                    compare_elim: true,
                    bitmask_elision: true,
                    speculation: true,
                },
            );
            sir::verify::verify_module(&m).unwrap();
        }
        let layout = interp::Layout::new(&m);
        m.func_ids()
            .map(|fid| regalloc::allocate(isel::select_function(&m, fid, &layout, opts), opts))
            .collect()
    }

    const LOOPY: &str = "
        u32 sum(u32 n) {
            u32 s = 0;
            for (u32 i = 0; i < n; i++) { s += i; }
            return s;
        }
        void main() { out(sum(200)); }
    ";

    #[test]
    fn clean_pipeline_verifies_post_isel_and_post_regalloc() {
        for opts in [
            CodegenOpts::default(),
            CodegenOpts {
                bitspec: true,
                compact: false,
                spill_prefer_orig: true,
            },
        ] {
            for af in allocated(LOOPY, &opts) {
                let d = verify_mir(&af.mir);
                assert!(d.is_empty(), "post-isel: {d:?}");
                let d = verify_allocated(&af);
                assert!(d.is_empty(), "post-regalloc: {d:?}");
            }
        }
    }

    fn first_bitspec_fn() -> AllocatedFn {
        let opts = CodegenOpts {
            bitspec: true,
            compact: false,
            spill_prefer_orig: true,
        };
        allocated(LOOPY, &opts)
            .into_iter()
            .find(|af| !af.mir.regions.is_empty())
            .expect("bitspec compile must form at least one region")
    }

    #[test]
    fn dropped_extend_is_undefined_use() {
        // Replace the first SExtend with a Mov from a fresh (never-defined)
        // word vreg: the use must surface as MIR-UNDEF.
        let mut af = first_bitspec_fn();
        let f = &mut af.mir;
        let fresh = VReg(f.classes.len() as u32);
        f.classes.push(RegClass::Word);
        let mut replaced = false;
        'outer: for b in 0..f.blocks.len() {
            for i in 0..f.blocks[b].insts.len() {
                if let MirInst::SExtend { rd, .. } = f.blocks[b].insts[i] {
                    f.blocks[b].insts[i] = MirInst::Mov { rd, rm: fresh };
                    replaced = true;
                    break 'outer;
                }
            }
        }
        assert!(replaced, "expected an SExtend in bitspec output");
        let d = verify_mir(&af.mir);
        assert!(
            d.iter().any(|p| p.rule == "MIR-UNDEF"),
            "want MIR-UNDEF, got {d:?}"
        );
    }

    #[test]
    fn wide_read_of_slice_vreg_is_a_class_violation() {
        // Route a Byte vreg into a word position (the "forgot the extend"
        // bug): MIR-CLASS must fire.
        let mut af = first_bitspec_fn();
        let f = &mut af.mir;
        let mut mutated = false;
        'outer: for b in 0..f.blocks.len() {
            for i in 0..f.blocks[b].insts.len() {
                if let MirInst::SExtend { rd, bn, .. } = f.blocks[b].insts[i] {
                    f.blocks[b].insts[i] = MirInst::Mov { rd, rm: bn };
                    mutated = true;
                    break 'outer;
                }
            }
        }
        assert!(mutated, "expected an SExtend in bitspec output");
        let d = verify_mir(&af.mir);
        assert!(
            d.iter().any(|p| p.rule == "MIR-CLASS"),
            "want MIR-CLASS, got {d:?}"
        );
    }

    #[test]
    fn erased_region_leaves_uncovered_speculation() {
        let mut af = first_bitspec_fn();
        let f = &mut af.mir;
        f.regions.clear();
        for b in &mut f.blocks {
            b.region = None;
            b.handler_for = None;
        }
        let d = verify_mir(f);
        assert!(
            d.iter()
                .any(|p| p.rule == "MIR-REGION" && p.msg.contains("outside any region")),
            "want uncovered-speculation MIR-REGION, got {d:?}"
        );
    }

    #[test]
    fn handler_marked_speculative_is_rejected() {
        let mut af = first_bitspec_fn();
        let f = &mut af.mir;
        let h = f.regions[0].1;
        f.block_mut(h).spec_side = true;
        let d = verify_mir(f);
        assert!(
            d.iter()
                .any(|p| p.rule == "MIR-REGION" && p.msg.contains("speculative side")),
            "got {d:?}"
        );
    }

    #[test]
    fn misallocated_slice_location_is_rejected() {
        let mut af = first_bitspec_fn();
        let byte_vreg = af
            .mir
            .classes
            .iter()
            .enumerate()
            .find(|(vi, c)| **c == RegClass::Byte && af.locs[*vi] != Loc::Spill(u32::MAX))
            .map(|(vi, _)| vi)
            .expect("bitspec output has live byte vregs");
        af.locs[byte_vreg] = Loc::Reg(isa::Reg(4));
        let d = verify_allocated(&af);
        assert!(
            d.iter().any(|p| p.rule == "MIR-LOC"),
            "want MIR-LOC, got {d:?}"
        );
    }

    #[test]
    fn spec_block_after_segment_is_rejected() {
        let mut af = first_bitspec_fn();
        // Move the first spec-side block to the end of the order.
        let first = af.order.remove(0);
        assert!(af.mir.block(first).spec_side);
        // Ensure something non-spec now leads the order tail.
        af.order.push(first);
        let d = verify_allocated(&af);
        assert!(
            d.iter().any(|p| p.rule == "MIR-REGION"
                && (p.msg.contains("after the spec segment") || p.msg.contains("entry block"))),
            "got {d:?}"
        );
    }
}
