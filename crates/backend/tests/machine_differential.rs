//! Backend-focused differential tests: tricky lowering corners compared
//! interpreter-vs-simulator across both ISAs (baseline and compact).

use backend::CodegenOpts;
use sim::{SimConfig, Simulator};

fn run_machine(m: &sir::Module, opts: &CodegenOpts) -> Vec<u32> {
    let p = backend::compile_module(m, opts);
    Simulator::new(&p, &SimConfig::default())
        .run()
        .expect("simulation")
        .outputs
}

fn differential(src: &str) {
    let mut m = lang::compile("t", src).unwrap();
    opt::simplify::run(&mut m);
    opt::dce::run(&mut m);
    let expect = interp::Interpreter::new(&m)
        .run("main", &[])
        .expect("interp")
        .outputs;
    for (label, opts) in [
        ("bitspec-isa", CodegenOpts::default()),
        (
            "baseline-isa",
            CodegenOpts {
                bitspec: false,
                compact: false,
                spill_prefer_orig: true,
            },
        ),
        (
            "compact-isa",
            CodegenOpts {
                bitspec: false,
                compact: true,
                spill_prefer_orig: true,
            },
        ),
    ] {
        assert_eq!(run_machine(&m, &opts), expect, "{label}\n{src}");
    }
}

#[test]
fn w16_canonicalization() {
    differential(
        "void main() {
            u16 a = 0xFFF0;
            u16 b = 0x1234;
            out(a + b);          // promoted add
            u16 c = a + b;       // truncated back to 16 bits
            out(c);
            out(c * c);
            out((u32)(i16)c);    // sign-extension path
            i16 s = 0 - 99;
            out((u32)(s >> 2));  // arithmetic shift on sub-word
            out((u32)(s / 5));   // signed division with sext inputs
        }",
    )
}

#[test]
fn w8_canonicalization_without_slices() {
    differential(
        "void main() {
            u8 x = 200;
            u8 y = 100;
            out(x + y);     // 300 at promoted width
            u8 z = x + y;   // 44 after wraparound
            out(z);
            i8 n = 0 - 5;
            out((u32)(n >> 1));
            out((u32)(i32)n);
        }",
    )
}

#[test]
fn ternary_select_lowering() {
    differential(
        "void main() {
            u32 acc = 0;
            for (u32 i = 0; i < 40; i++) {
                acc += i % 3 == 0 ? i * 2 : i;
                u64 wide = i > 20 ? (u64)i << 32 : (u64)i;
                acc ^= (u32)(wide >> 32);
            }
            out(acc);
        }",
    )
}

#[test]
fn u64_shift_matrix() {
    // Constant shifts across the 32-bit boundary in both directions.
    let mut body = String::from("u64 v = 0x123456789ABCDEF0;\n");
    for k in [0u32, 1, 7, 8, 31, 32, 33, 48, 63] {
        body.push_str(&format!("out(v << {k}); out(v >> {k});\n"));
    }
    body.push_str("i64 s = 0 - 0x123456789ABC;\n");
    for k in [1u32, 31, 32, 47, 63] {
        body.push_str(&format!("out((u64)(s >> {k}));\n"));
    }
    differential(&format!("void main() {{ {body} }}"));
}

#[test]
fn u64_multiplication_cross_terms() {
    differential(
        "void main() {
            u64 a = 0xFFFFFFFF;
            u64 b = 0x100000001;
            out(a * b);
            out(a * a);
            u64 c = 0xDEADBEEF;
            out(c * 0x1003);
            i64 n = 0 - 12345;
            out((u64)(n * 789));
        }",
    )
}

#[test]
fn deep_call_chains_with_stack_args() {
    differential(
        "u32 f6(u32 a, u32 b, u32 c, u32 d, u32 e, u32 f) {
            return a ^ (b << 1) ^ (c << 2) ^ (d << 3) ^ (e << 4) ^ (f << 5);
         }
         u32 f2(u32 a, u32 b) { return f6(a, b, a + b, a - b, a * b, a ^ b); }
         u32 f1(u32 a) { return f2(a, f2(a, a + 1)); }
         void main() {
            u32 s = 0;
            for (u32 i = 0; i < 12; i++) { s ^= f1(i * 0x01010101); }
            out(s);
         }",
    )
}

#[test]
fn u64_params_and_returns() {
    differential(
        "u64 mix(u64 a, u64 b, u32 c) { return (a ^ (b >> 3)) + c; }
         void main() {
            u64 x = 0x1122334455667788;
            u64 y = mix(x, x << 5, 77);
            out(y);
            out(mix(y, x, 1));
         }",
    )
}

#[test]
fn bool_values_in_registers() {
    differential(
        "void main() {
            u32 t = 0;
            for (u32 i = 0; i < 30; i++) {
                bool a = i % 2 == 0;
                bool b = i % 3 == 0;
                bool c = a && !b;
                if (c) { t += i; }
                t += a ? 1 : 0;
            }
            out(t);
        }",
    )
}

#[test]
fn memory_aliasing_patterns() {
    differential(
        "global u32 buf[32];
         void main() {
            for (u32 i = 0; i < 32; i++) { buf[i] = i * i; }
            // Overlapping read-modify-write with varying strides.
            for (u32 i = 1; i < 31; i++) {
                buf[i] = buf[i - 1] + buf[i + 1];
            }
            u32 h = 0;
            for (u32 i = 0; i < 32; i++) { h = h * 31 + buf[i]; }
            out(h);
         }",
    )
}

#[test]
fn sub_word_memory_widths() {
    differential(
        "global u8 b8[8];
         global u16 b16[8];
         void main() {
            for (u32 i = 0; i < 8; i++) {
                b8[i] = (u8)(i * 40);
                b16[i] = (u16)(i * 10000);
            }
            u32 s = 0;
            for (u32 i = 0; i < 8; i++) { s += b8[i] + b16[i]; }
            out(s);
         }",
    )
}
