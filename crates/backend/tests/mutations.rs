//! Seeded-mutation regression tests for the verification layer.
//!
//! Each test compiles a real workload through the BITSPEC pipeline, then
//! injects one representative compiler bug and asserts the responsible
//! checker rejects it with its stable rule ID:
//!
//! * erase a speculative region (handler-edge deletion) → `LINT-COVER`;
//! * drop the extend between a slice and a word read → `MIR-CLASS` /
//!   `MIR-UNDEF`;
//! * corrupt the emitted `Δ` → `EMIT-DELTA`.
//!
//! These are exactly the bug classes the paper's soundness argument
//! (Theorem 3.1, eq 8, the §3.3.4 layout) rules out; the tests pin that the
//! checkers actually stand guard over them.

use backend::emit::verify_layout;
use backend::isel::CodegenOpts;
use backend::mir::{MirInst, RegClass, VReg};
use backend::mir_verify::{verify_allocated, verify_mir};
use backend::{isel, regalloc};
use isa::MInst;

const SRC: &str = "
    u32 sum(u32 n) {
        u32 s = 0;
        for (u32 i = 0; i < n; i++) { s += i; }
        return s;
    }
    void main() { out(sum(200)); }
";

/// Compiles `SRC` through profile + squeeze, returning the squeezed module.
fn squeezed_module() -> sir::Module {
    let mut m = lang::compile("mut", SRC).unwrap();
    let mut i = interp::Interpreter::new(&m);
    i.enable_profiling();
    i.run("main", &[]).unwrap();
    let profile = i.take_profile().unwrap();
    let report = opt::squeeze_module(
        &mut m,
        &profile,
        &opt::SqueezeConfig {
            heuristic: interp::Heuristic::Max,
            compare_elim: true,
            bitmask_elision: true,
            speculation: true,
        },
    );
    assert!(report.regions > 0, "workload must form speculative regions");
    sir::verify::verify_module(&m).unwrap();
    sir::bitlint::lint_module(&m).expect("squeezer output must lint clean");
    m
}

fn opts() -> CodegenOpts {
    CodegenOpts {
        bitspec: true,
        compact: false,
        spill_prefer_orig: true,
    }
}

/// Mutation 1: delete a region (and its block marks) from squeezed SIR —
/// the misspeculation handler edge vanishes while the speculative
/// instructions remain. `bitlint` must flag every uncovered instruction.
#[test]
fn erased_region_is_rejected_with_lint_cover() {
    let mut m = squeezed_module();
    let mut erased = false;
    for f in &mut m.funcs {
        if f.regions.is_empty() {
            continue;
        }
        f.regions.clear();
        for b in &mut f.blocks {
            b.region = None;
            b.handler_for = None;
        }
        erased = true;
    }
    assert!(erased);
    let err = sir::bitlint::lint_module(&m).expect_err("uncovered speculation must not lint");
    assert!(err.has_rule("LINT-COVER"), "want LINT-COVER, got: {err}");
}

/// Mutation 2a: replace the slice→word extend with a plain register move —
/// a Byte vreg flows into a Word operand position. The SMIR verifier must
/// report the class violation.
#[test]
fn dropped_extend_is_rejected_with_mir_class() {
    let m = squeezed_module();
    let layout = interp::Layout::new(&m);
    let mut mutated = false;
    for fid in m.func_ids() {
        let mut mir = isel::select_function(&m, fid, &layout, &opts());
        assert!(verify_mir(&mir).is_empty(), "clean isel must verify");
        'seek: for b in 0..mir.blocks.len() {
            for i in 0..mir.blocks[b].insts.len() {
                if let MirInst::SExtend { rd, bn, .. } = mir.blocks[b].insts[i] {
                    mir.blocks[b].insts[i] = MirInst::Mov { rd, rm: bn };
                    mutated = true;
                    break 'seek;
                }
            }
        }
        if !mutated {
            continue;
        }
        let diags = verify_mir(&mir);
        assert!(
            diags.iter().any(|d| d.rule == "MIR-CLASS"),
            "want MIR-CLASS, got {diags:?}"
        );
        return;
    }
    panic!("no SExtend found in bitspec isel output");
}

/// Mutation 2b: delete the extend entirely — its word destination is then
/// read without ever being defined. The definedness dataflow (which flows
/// over misspeculation edges too) must report it.
#[test]
fn deleted_extend_is_rejected_with_mir_undef() {
    let m = squeezed_module();
    let layout = interp::Layout::new(&m);
    for fid in m.func_ids() {
        let mut mir = isel::select_function(&m, fid, &layout, &opts());
        let mut victim: Option<(usize, usize)> = None;
        'seek: for b in 0..mir.blocks.len() {
            for i in 0..mir.blocks[b].insts.len() {
                if let MirInst::SExtend { rd, .. } = mir.blocks[b].insts[i] {
                    // Only a meaningful mutation if rd is read afterwards.
                    let read_later = mir.blocks.iter().enumerate().any(|(bj, blk)| {
                        blk.insts
                            .iter()
                            .enumerate()
                            .any(|(ij, inst)| (bj != b || ij > i) && inst.uses().contains(&rd))
                            || blk.term.uses().contains(&rd)
                    });
                    if read_later {
                        victim = Some((b, i));
                        break 'seek;
                    }
                }
            }
        }
        let Some((b, i)) = victim else { continue };
        mir.blocks[b].insts.remove(i);
        let diags = verify_mir(&mir);
        assert!(
            diags.iter().any(|d| d.rule == "MIR-UNDEF"),
            "want MIR-UNDEF, got {diags:?}"
        );
        return;
    }
    panic!("no live SExtend found in bitspec isel output");
}

/// Mutation 3: corrupt the patched `SetDelta` displacement in the linked
/// image — `pc + Δ` no longer lands on the mirrored skeleton branch. The
/// layout checker must reject the image.
#[test]
fn corrupted_delta_is_rejected_with_emit_delta() {
    let m = squeezed_module();
    let mut p = backend::compile_module_checked(&m, &opts(), true).expect("clean compile");
    assert!(
        !p.spec_targets.is_empty(),
        "bitspec program must have cover entries"
    );
    assert!(verify_layout(&p).is_empty());
    let mut corrupted = false;
    for inst in &mut p.insts {
        if let MInst::SetDelta { bytes } = inst {
            *bytes += 4;
            corrupted = true;
        }
    }
    assert!(corrupted, "bitspec program must set Δ");
    let diags = verify_layout(&p);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "EMIT-DELTA" || d.rule == "EMIT-GRID"),
        "want EMIT-DELTA/EMIT-GRID, got {diags:?}"
    );
}

/// Bonus coverage: dropping a cover entry leaves the misspeculation-capable
/// instruction unaccounted for (`EMIT-UNCOVERED`), and the full allocated
/// pipeline stays clean end to end (`verify_allocated`).
#[test]
fn missing_cover_entry_is_rejected_with_emit_uncovered() {
    let m = squeezed_module();
    let mut p = backend::compile_module_checked(&m, &opts(), true).expect("clean compile");
    assert!(!p.spec_targets.is_empty());
    p.spec_targets.pop();
    let diags = verify_layout(&p);
    assert!(
        diags.iter().any(|d| d.rule == "EMIT-UNCOVERED"),
        "want EMIT-UNCOVERED, got {diags:?}"
    );
}

#[test]
fn allocated_pipeline_verifies_clean() {
    let m = squeezed_module();
    let layout = interp::Layout::new(&m);
    let mut saw_byte_vreg = false;
    for fid in m.func_ids() {
        let mir = isel::select_function(&m, fid, &layout, &opts());
        saw_byte_vreg |= mir.classes.contains(&RegClass::Byte);
        let af = regalloc::allocate(mir, &opts());
        let diags = verify_allocated(&af);
        assert!(diags.is_empty(), "post-regalloc: {diags:?}");
        // Sanity: the verifier inspected real vregs.
        assert!(af.mir.classes.len() > VReg(0).index());
    }
    assert!(saw_byte_vreg, "squeezed code must carry slice vregs");
}
