//! The traced back-end entry point: pass entries, order, fingerprints and
//! print-after dumps.

use backend::{compile_module, compile_module_traced, program_fingerprint, CodegenOpts};
use sir::pass::{PrintAfter, TracePolicy, Tracer};

fn module() -> sir::Module {
    let src = "u32 twice(u32 x) { return x + x; }
               void main() { u32 s = 0; for (u32 i = 0; i < 10; i++) { s += twice(i); } out(s); }";
    let mut m = lang::compile("t", src).unwrap();
    opt::expand_module(&mut m, &opt::ExpanderConfig::default());
    m
}

#[test]
fn traced_records_every_backend_pass_in_order() {
    let m = module();
    let mut tr = Tracer::new(TracePolicy::verify(true));
    let p = compile_module_traced(&m, &CodegenOpts::default(), &mut tr).unwrap();
    let names: Vec<&str> = tr.entries().iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, backend::PASS_NAMES);
    for e in tr.entries() {
        assert!(e.wall_ns > 0, "{} has a wall time", e.name);
    }
    let emit = &tr.entries()[4];
    assert_eq!(emit.fingerprint, Some(program_fingerprint(&p)));
    assert_eq!(emit.after.insts, p.insts.len() as u32);
    for check in ["mir-verify", "regalloc-verify", "emit-verify"] {
        let e = tr.entries().iter().find(|e| e.name == check).unwrap();
        assert!(e.verified, "{check} passed");
    }
    // The isel entry's delta goes SIR → MIR: function count is preserved.
    let isel = &tr.entries()[0];
    assert_eq!(isel.before.funcs, m.funcs.len() as u32);
    assert_eq!(isel.after.funcs, m.funcs.len() as u32);
}

#[test]
fn unverified_trace_has_only_transform_passes_and_matches_checked() {
    let m = module();
    let mut tr = Tracer::new(TracePolicy::verify(false));
    let p = compile_module_traced(&m, &CodegenOpts::default(), &mut tr).unwrap();
    let names: Vec<&str> = tr.entries().iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, ["isel", "regalloc", "emit"]);
    // Instrumentation must not perturb the output image.
    let q = compile_module(&m, &CodegenOpts::default());
    assert_eq!(program_fingerprint(&p), program_fingerprint(&q));
}

#[test]
fn print_after_captures_mir_dumps() {
    let m = module();
    let mut tr = Tracer::new(TracePolicy {
        verify_each: false,
        print_after: PrintAfter::Pass("regalloc".to_string()),
        echo_dumps: false,
    });
    compile_module_traced(&m, &CodegenOpts::default(), &mut tr).unwrap();
    let ra = tr.entries().iter().find(|e| e.name == "regalloc").unwrap();
    let dump = ra.dump.as_deref().expect("regalloc dump captured");
    assert!(dump.contains("mfunc main"), "dump lists functions:\n{dump}");
    let isel = tr.entries().iter().find(|e| e.name == "isel").unwrap();
    assert!(isel.dump.is_none(), "non-matching passes are not dumped");
}
