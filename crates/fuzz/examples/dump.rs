//! Prints a generated case and its oracle findings (no shrinking):
//! `dump <seed>`. Triage aid for fuzzer-reported seeds.

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("usage: dump <seed>");
    let case = fuzz::gen::generate(seed);
    println!("{}", case.source());
    for f in fuzz::oracle::check_protected(&case) {
        println!("finding: {}: {}", f.kind.name(), f.detail);
    }
}
