//! Triage helper: builds a corpus entry (or generated seed) under one
//! oracle config and prints the squeezed SIR next to the interp outputs
//! of the squeezed vs baseline modules.
//!
//! Usage: sirdump <path-to-.minic> [config-index]

use fuzz::corpus::Entry;
use fuzz::oracle::config_matrix;
use interp::Interpreter;

fn run(m: &sir::Module, w: &bitspec::Workload) -> Vec<u32> {
    let mut i = Interpreter::new(m);
    i.set_fuel(50_000_000);
    for (g, data) in &w.inputs {
        i.install_global(g, data);
    }
    i.run("main", &[]).map(|r| r.outputs).unwrap_or_default()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args
        .next()
        .expect("usage: sirdump <file.minic> [cfg-index]");
    let idx: usize = args.next().map(|s| s.parse().unwrap()).unwrap_or(3);
    let text = std::fs::read_to_string(&path).unwrap();
    let entry = Entry::from_text(&text).unwrap();
    let w = entry.workload("t");
    let cfgs = config_matrix();
    let (name, cfg) = &cfgs[idx];
    let base = bitspec::build(&w, &bitspec::BuildConfig::baseline()).unwrap();
    let c = bitspec::build(&w, cfg).unwrap();
    println!("== config {name}, used_squeezed={} ==", c.used_squeezed);
    println!("{}", sir::print::print_module(&c.module));
    println!("baseline outputs: {:?}", run(&base.module, &w));
    println!("{name} outputs:  {:?}", run(&c.module, &w));
    for f in fuzz::oracle::check_workload(&w) {
        println!("finding: {}: {}", f.kind.name(), f.detail);
    }
    bitspec::stages::clear();
}
