//! Corpus persistence: minimized divergences saved as self-contained
//! regression tests.
//!
//! An entry is a plain text file — a few `#!`-prefixed header lines
//! followed by the mini-C source — so corpus files are readable, diffable
//! and independent of the generator that produced them:
//!
//! ```text
//! #! kind: arch-outputs
//! #! seed: 42
//! #! input: in0 = ff00a1…          (hex bytes)
//! #! train: in0 = 00010203…
//! void main() { … }
//! ```
//!
//! `tests/fuzz_corpus.rs` replays every entry under `corpus/` through the
//! full oracle and asserts agreement (entries are committed *after* the
//! underlying bug is fixed — or, for the hand-written hazard set, describe
//! behaviour that was always correct but sits on the paths most likely to
//! regress).

use crate::oracle::Kind;
use bitspec::Workload;
use std::fmt::Write as _;
use std::path::Path;

/// One corpus entry: the (minimized) program plus its inputs and the
/// divergence kind it originally exhibited.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The oracle kind this entry reproduced when it was found; purely
    /// documentary after the fix (replays assert *no* finding of any kind).
    pub kind: Option<Kind>,
    /// The generator seed it came from (0 for hand-written entries).
    pub seed: u64,
    pub source: String,
    pub inputs: Vec<(String, Vec<u8>)>,
    pub train_inputs: Vec<(String, Vec<u8>)>,
}

impl Entry {
    /// The entry as a runnable workload named after `name`.
    pub fn workload(&self, name: &str) -> Workload {
        let mut w = Workload::from_source(name, self.source.clone());
        for (g, d) in &self.inputs {
            w = w.with_input(g, d.clone());
        }
        for (g, d) in &self.train_inputs {
            w = w.with_train_input(g, d.clone());
        }
        w
    }

    /// Serializes to the on-disk text format.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        if let Some(kind) = self.kind {
            let _ = writeln!(s, "#! kind: {}", kind.name());
        }
        let _ = writeln!(s, "#! seed: {}", self.seed);
        for (g, d) in &self.inputs {
            let _ = writeln!(s, "#! input: {g} = {}", hex(d));
        }
        for (g, d) in &self.train_inputs {
            let _ = writeln!(s, "#! train: {g} = {}", hex(d));
        }
        s.push_str(&self.source);
        if !self.source.ends_with('\n') {
            s.push('\n');
        }
        s
    }

    /// Parses the on-disk text format.
    ///
    /// # Errors
    /// Returns a description of the first malformed header line.
    pub fn from_text(text: &str) -> Result<Entry, String> {
        let mut entry = Entry {
            kind: None,
            seed: 0,
            source: String::new(),
            inputs: Vec::new(),
            train_inputs: Vec::new(),
        };
        let mut body = Vec::new();
        let mut in_header = true;
        for line in text.lines() {
            let header = in_header.then(|| line.strip_prefix("#!")).flatten();
            match header {
                Some(rest) => {
                    let rest = rest.trim();
                    if let Some(v) = rest.strip_prefix("kind:") {
                        let v = v.trim();
                        entry.kind =
                            Some(Kind::parse(v).ok_or_else(|| format!("unknown kind `{v}`"))?);
                    } else if let Some(v) = rest.strip_prefix("seed:") {
                        entry.seed = v
                            .trim()
                            .parse()
                            .map_err(|e| format!("bad seed `{}`: {e}", v.trim()))?;
                    } else if let Some(v) = rest.strip_prefix("input:") {
                        entry.inputs.push(parse_input(v)?);
                    } else if let Some(v) = rest.strip_prefix("train:") {
                        entry.train_inputs.push(parse_input(v)?);
                    } else {
                        return Err(format!("unknown header line `#!{rest}`"));
                    }
                }
                None => {
                    in_header = false;
                    body.push(line);
                }
            }
        }
        entry.source = body.join("\n");
        entry.source.push('\n');
        if entry.source.trim().is_empty() {
            return Err("entry has no source body".into());
        }
        Ok(entry)
    }
}

fn parse_input(v: &str) -> Result<(String, Vec<u8>), String> {
    let (name, data) = v
        .split_once('=')
        .ok_or_else(|| format!("input line `{v}` missing `=`"))?;
    Ok((name.trim().to_string(), unhex(data.trim())?))
}

fn hex(data: &[u8]) -> String {
    let mut s = String::with_capacity(data.len() * 2);
    for b in data {
        let _ = write!(s, "{b:02x}");
    }
    s
}

fn unhex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err(format!("odd-length hex string `{s}`"));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|e| format!("bad hex at {i}: {e}")))
        .collect()
}

/// Loads every `.minic` entry under `dir`, sorted by file name for
/// deterministic replay order. Missing directory = empty corpus.
///
/// # Errors
/// Returns `(file name, reason)` for the first unreadable or malformed
/// entry — a corrupt corpus should fail replay loudly, not silently
/// shrink coverage.
pub fn load_dir(dir: &Path) -> Result<Vec<(String, Entry)>, (String, String)> {
    let mut names = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(Vec::new()),
    };
    for e in entries.flatten() {
        let name = e.file_name().to_string_lossy().into_owned();
        if name.ends_with(".minic") {
            names.push(name);
        }
    }
    names.sort();
    let mut out = Vec::new();
    for name in names {
        let text =
            std::fs::read_to_string(dir.join(&name)).map_err(|e| (name.clone(), e.to_string()))?;
        let entry = Entry::from_text(&text).map_err(|e| (name.clone(), e))?;
        out.push((name, entry));
    }
    Ok(out)
}

/// The repo-relative corpus directory (compile-time anchored, so tests and
/// the fuzzer binary agree regardless of working directory).
pub fn default_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip() {
        let e = Entry {
            kind: Some(Kind::ArchOutputs),
            seed: 99,
            source: "void main() { out(1); }\n".into(),
            inputs: vec![("in0".into(), vec![0xff, 0x00, 0x7f])],
            train_inputs: vec![("in0".into(), vec![1, 2])],
        };
        let text = e.to_text();
        let back = Entry::from_text(&text).unwrap();
        assert_eq!(back.kind, Some(Kind::ArchOutputs));
        assert_eq!(back.seed, 99);
        assert_eq!(back.inputs, e.inputs);
        assert_eq!(back.train_inputs, e.train_inputs);
        assert_eq!(back.source, e.source);
        // Serialization is itself a fixpoint.
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn malformed_headers_are_rejected() {
        assert!(Entry::from_text("#! kind: nonsense\nvoid main() {}\n").is_err());
        assert!(Entry::from_text("#! seed: twelve\nvoid main() {}\n").is_err());
        assert!(Entry::from_text("#! input: in0 ff\nvoid main() {}\n").is_err());
        assert!(Entry::from_text("#! input: in0 = f\nvoid main() {}\n").is_err());
        assert!(Entry::from_text("#! seed: 1\n").is_err());
    }

    #[test]
    fn headers_after_source_are_body_text() {
        let e = Entry::from_text("void main() { out(1); }\n// #! not a header\n").unwrap();
        assert!(e.source.contains("not a header"));
    }
}
