//! Automatic test-case minimization.
//!
//! [`shrink`] takes a diverging [`Case`] and a reproduction predicate and
//! greedily applies size-reducing edits, restarting from the smallest
//! reproducing variant until no single edit helps (or the evaluation
//! budget runs out). Edits are tried coarse-to-fine:
//!
//! 1. **Structure** — delete a whole function or global, delete a
//!    statement, replace a loop with its body, collapse an `if` to one
//!    branch.
//! 2. **Expressions** — replace any subexpression with `0`/`1` or with one
//!    of its own operands (binary → lhs/rhs, cast/unary → inner,
//!    ternary/call → arm), shedding the wrapper.
//! 3. **Constants** — decrement or halve integer literals toward zero.
//! 4. **Inputs** — zero or halve the evaluation/training input arrays.
//!
//! Every candidate is a complete program (the printer is total), so an
//! edit that breaks compilation simply fails the predicate and is
//! skipped. The walk is deterministic: candidates are enumerated in a
//! fixed preorder, and the first reproducing smaller candidate wins each
//! round.

use crate::gen::Case;
use crate::oracle::{self, Kind};
use lang::ast::*;

/// Outcome of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    pub case: Case,
    /// Predicate evaluations spent.
    pub evals: u64,
    /// Successful size reductions applied.
    pub steps: u64,
}

/// Minimizes `case` while `repro` holds, spending at most `budget`
/// predicate evaluations. `case` itself is assumed to reproduce.
pub fn shrink(case: &Case, budget: u64, repro: &mut dyn FnMut(&Case) -> bool) -> ShrinkResult {
    let mut best = case.clone();
    let mut best_size = size(&best);
    let mut evals = 0u64;
    let mut steps = 0u64;
    'fixpoint: loop {
        for cand in candidates(&best) {
            if evals >= budget {
                break 'fixpoint;
            }
            if size(&cand) >= best_size {
                continue;
            }
            evals += 1;
            if repro(&cand) {
                best_size = size(&cand);
                best = cand;
                steps += 1;
                continue 'fixpoint;
            }
        }
        break;
    }
    ShrinkResult {
        case: best,
        evals,
        steps,
    }
}

/// Minimizes a case whose oracle run produced a finding of `kind`: the
/// reproduction predicate is "the multi-oracle check still reports that
/// kind". The stage cache is cleared periodically — every candidate is a
/// distinct program, so shrinking would otherwise fill it with dead
/// entries.
pub fn shrink_to_kind(case: &Case, kind: Kind, budget: u64) -> ShrinkResult {
    let mut n = 0u64;
    shrink(case, budget, &mut |c| {
        n += 1;
        if n.is_multiple_of(32) {
            bitspec::stages::clear();
        }
        // The protected check keeps the shrink alive when an edit pushes a
        // candidate outside the back-end's supported subset (such programs
        // panic the pipeline by design; they reproduce only a Panic-kind
        // finding).
        oracle::check_protected(c).iter().any(|f| f.kind == kind)
    })
}

/// The minimization size metric: rendered source length plus input bytes.
pub fn size(case: &Case) -> usize {
    case.source().len()
        + case.inputs.iter().map(|(_, d)| d.len()).sum::<usize>()
        + case
            .train_inputs
            .iter()
            .map(|(_, d)| d.len())
            .sum::<usize>()
}

/// All single-step edits of `case`, coarse first.
fn candidates(case: &Case) -> Vec<Case> {
    let mut out = Vec::new();
    let unit = &case.unit;

    // Delete a non-main function.
    for i in 0..unit.funcs.len() {
        if unit.funcs[i].name != "main" {
            let mut u = unit.clone();
            u.funcs.remove(i);
            out.push(with_unit(case, u));
        }
    }
    // Delete a global (and its inputs, which would no longer install).
    for i in 0..unit.globals.len() {
        let name = unit.globals[i].name.clone();
        let mut u = unit.clone();
        u.globals.remove(i);
        let mut c = with_unit(case, u);
        c.inputs.retain(|(g, _)| *g != name);
        c.train_inputs.retain(|(g, _)| *g != name);
        out.push(c);
    }

    // Statement-level edits, one candidate per (site, edit) pair.
    for edit in [StmtEdit::Delete, StmtEdit::Unwrap, StmtEdit::UnwrapElse] {
        let mut site = 0;
        loop {
            let mut u = unit.clone();
            let mut cursor = 0;
            let mut applied = false;
            for f in &mut u.funcs {
                edit_stmts(&mut f.body, &mut cursor, site, edit, &mut applied);
            }
            if cursor <= site {
                break; // `site` walked past the last statement
            }
            if applied {
                out.push(with_unit(case, u));
            }
            site += 1;
        }
    }

    // Expression-level edits.
    for edit in [
        ExprEdit::Zero,
        ExprEdit::One,
        ExprEdit::Lhs,
        ExprEdit::Rhs,
        ExprEdit::Halve,
        ExprEdit::Decrement,
    ] {
        let mut site = 0;
        loop {
            let mut u = unit.clone();
            let mut cursor = 0;
            let mut applied = false;
            for f in &mut u.funcs {
                for s in &mut f.body {
                    edit_stmt_exprs(s, &mut cursor, site, edit, &mut applied);
                }
            }
            if cursor <= site {
                break;
            }
            if applied {
                out.push(with_unit(case, u));
            }
            site += 1;
        }
    }

    // Input reductions: zero an array, then halve its length.
    for which in [false, true] {
        let list_len = if which {
            case.train_inputs.len()
        } else {
            case.inputs.len()
        };
        for i in 0..list_len {
            fn pick(c: &mut Case, train: bool) -> &mut Vec<(String, Vec<u8>)> {
                if train {
                    &mut c.train_inputs
                } else {
                    &mut c.inputs
                }
            }
            let data = if which {
                &case.train_inputs[i].1
            } else {
                &case.inputs[i].1
            };
            if data.iter().any(|&b| b != 0) {
                let mut c = case.clone();
                let d = &mut pick(&mut c, which)[i].1;
                d.iter_mut().for_each(|b| *b = 0);
                out.push(c);
            }
            if data.len() > 1 {
                let mut c = case.clone();
                let d = &mut pick(&mut c, which)[i].1;
                let half = d.len() / 2;
                d.truncate(half);
                out.push(c);
            }
        }
    }

    out
}

fn with_unit(case: &Case, unit: Unit) -> Case {
    Case {
        seed: case.seed,
        unit,
        inputs: case.inputs.clone(),
        train_inputs: case.train_inputs.clone(),
    }
}

#[derive(Clone, Copy, PartialEq)]
enum StmtEdit {
    /// Remove the statement entirely.
    Delete,
    /// Loop → its body (for-loops keep the init); `if` → then-branch.
    Unwrap,
    /// `if` → else-branch.
    UnwrapElse,
}

/// Applies `edit` to the `target`-th statement (preorder) within `stmts`,
/// advancing `cursor` across the traversal.
fn edit_stmts(
    stmts: &mut Vec<Stmt>,
    cursor: &mut usize,
    target: usize,
    edit: StmtEdit,
    applied: &mut bool,
) {
    let mut i = 0;
    while i < stmts.len() {
        let here = *cursor == target && !*applied;
        *cursor += 1;
        if here {
            *applied = true;
            let stmt = stmts.remove(i);
            match (edit, stmt) {
                (StmtEdit::Delete, _) => {}
                (StmtEdit::Unwrap, Stmt::While(_, body))
                | (StmtEdit::Unwrap, Stmt::DoWhile(body, _)) => {
                    splice(stmts, i, body);
                }
                (StmtEdit::Unwrap, Stmt::For(init, _, _, body)) => {
                    let mut repl = Vec::new();
                    if let Some(init) = *init {
                        repl.push(init);
                    }
                    repl.extend(body);
                    splice(stmts, i, repl);
                }
                (StmtEdit::Unwrap, Stmt::If(_, then, _)) => splice(stmts, i, then),
                (StmtEdit::UnwrapElse, Stmt::If(_, _, els)) => splice(stmts, i, els),
                (_, stmt) => {
                    // The edit doesn't apply at this site; restore the
                    // statement and report no candidate.
                    stmts.insert(i, stmt);
                    *applied = false;
                }
            }
            return;
        }
        match &mut stmts[i] {
            Stmt::If(_, t, e) => {
                edit_stmts(t, cursor, target, edit, applied);
                edit_stmts(e, cursor, target, edit, applied);
            }
            Stmt::While(_, b) | Stmt::DoWhile(b, _) => edit_stmts(b, cursor, target, edit, applied),
            Stmt::For(_, _, _, b) => edit_stmts(b, cursor, target, edit, applied),
            _ => {}
        }
        if *applied {
            return;
        }
        i += 1;
    }
}

fn splice(stmts: &mut Vec<Stmt>, at: usize, body: Vec<Stmt>) {
    for (k, s) in body.into_iter().enumerate() {
        stmts.insert(at + k, s);
    }
}

#[derive(Clone, Copy, PartialEq)]
enum ExprEdit {
    /// Replace with `0`.
    Zero,
    /// Replace with `1`.
    One,
    /// Binary → lhs; unary/cast/volatile → inner; ternary → then; call →
    /// first argument; index → index expression.
    Lhs,
    /// Binary → rhs; ternary → else.
    Rhs,
    /// Integer literal `v` → `v / 2`.
    Halve,
    /// Integer literal `v` → `v - 1`.
    Decrement,
}

fn edit_stmt_exprs(
    s: &mut Stmt,
    cursor: &mut usize,
    target: usize,
    edit: ExprEdit,
    applied: &mut bool,
) {
    if *applied {
        return;
    }
    match s {
        Stmt::Decl(_, _, e) | Stmt::Return(Some(e)) | Stmt::Expr(e) | Stmt::Out(e) => {
            edit_expr(e, cursor, target, edit, applied)
        }
        Stmt::Assign(lv, e) => {
            if let LValue::Index(a, i) = lv {
                edit_expr(a, cursor, target, edit, applied);
                edit_expr(i, cursor, target, edit, applied);
            }
            edit_expr(e, cursor, target, edit, applied);
        }
        Stmt::If(c, t, els) => {
            edit_expr(c, cursor, target, edit, applied);
            for s in t.iter_mut().chain(els.iter_mut()) {
                edit_stmt_exprs(s, cursor, target, edit, applied);
            }
        }
        Stmt::While(c, b) => {
            edit_expr(c, cursor, target, edit, applied);
            for s in b {
                edit_stmt_exprs(s, cursor, target, edit, applied);
            }
        }
        Stmt::DoWhile(b, c) => {
            for s in b.iter_mut() {
                edit_stmt_exprs(s, cursor, target, edit, applied);
            }
            edit_expr(c, cursor, target, edit, applied);
        }
        Stmt::For(init, cond, step, b) => {
            if let Some(s) = init.as_mut() {
                edit_stmt_exprs(s, cursor, target, edit, applied);
            }
            if let Some(c) = cond {
                edit_expr(c, cursor, target, edit, applied);
            }
            if let Some(s) = step.as_mut() {
                edit_stmt_exprs(s, cursor, target, edit, applied);
            }
            for s in b {
                edit_stmt_exprs(s, cursor, target, edit, applied);
            }
        }
        Stmt::Return(None) | Stmt::Break | Stmt::Continue | Stmt::ArrayDecl(..) => {}
    }
}

fn edit_expr(e: &mut Expr, cursor: &mut usize, target: usize, edit: ExprEdit, applied: &mut bool) {
    if *applied {
        return;
    }
    let here = *cursor == target;
    *cursor += 1;
    if here {
        if let Some(repl) = apply_expr_edit(e, edit) {
            *e = repl;
            *applied = true;
        }
        // Whether or not the edit applied, this site is consumed: stop
        // descending so the cursor count stays stable across variants.
        return;
    }
    match &mut e.kind {
        ExprKind::Index(a, b) | ExprKind::AddrOf(a, b) | ExprKind::Binary(_, a, b) => {
            edit_expr(a, cursor, target, edit, applied);
            edit_expr(b, cursor, target, edit, applied);
        }
        ExprKind::Unary(_, a) | ExprKind::Cast(_, a) | ExprKind::VolatileLoad(a) => {
            edit_expr(a, cursor, target, edit, applied)
        }
        ExprKind::Ternary(c, t, f) => {
            edit_expr(c, cursor, target, edit, applied);
            edit_expr(t, cursor, target, edit, applied);
            edit_expr(f, cursor, target, edit, applied);
        }
        ExprKind::Call(_, args) => {
            for a in args {
                edit_expr(a, cursor, target, edit, applied);
            }
        }
        ExprKind::Int(_) | ExprKind::Bool(_) | ExprKind::Ident(_) => {}
    }
}

/// The replacement for `e` under `edit`, or `None` when it doesn't apply
/// (e.g. halving a non-literal, taking the lhs of a leaf).
fn apply_expr_edit(e: &Expr, edit: ExprEdit) -> Option<Expr> {
    let lit = |v: u64| Expr {
        kind: ExprKind::Int(v),
        line: 0,
        col: 0,
    };
    match edit {
        ExprEdit::Zero => match e.kind {
            ExprKind::Int(0) => None,
            _ => Some(lit(0)),
        },
        ExprEdit::One => match e.kind {
            ExprKind::Int(0) | ExprKind::Int(1) => None,
            _ => Some(lit(1)),
        },
        ExprEdit::Lhs => match &e.kind {
            ExprKind::Binary(_, a, _)
            | ExprKind::Unary(_, a)
            | ExprKind::Cast(_, a)
            | ExprKind::VolatileLoad(a) => Some((**a).clone()),
            ExprKind::Ternary(_, t, _) => Some((**t).clone()),
            ExprKind::Index(_, i) => Some((**i).clone()),
            ExprKind::Call(_, args) => args.first().cloned(),
            _ => None,
        },
        ExprEdit::Rhs => match &e.kind {
            ExprKind::Binary(_, _, b) => Some((**b).clone()),
            ExprKind::Ternary(_, _, f) => Some((**f).clone()),
            _ => None,
        },
        ExprEdit::Halve => match e.kind {
            ExprKind::Int(v) if v > 1 => Some(lit(v / 2)),
            _ => None,
        },
        ExprEdit::Decrement => match e.kind {
            ExprKind::Int(v) if v > 0 => Some(lit(v - 1)),
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    /// Shrinking against a compile-only predicate must drive the program
    /// to near-nothing: it exercises every edit path and the fixpoint loop.
    #[test]
    fn shrink_reaches_tiny_fixpoint_on_permissive_predicate() {
        let case = generate(7);
        let start = size(&case);
        let r = shrink(&case, 50_000, &mut |c| {
            lang::compile("s", &c.source()).is_ok()
        });
        assert!(r.steps > 0, "no edits applied");
        assert!(
            size(&r.case) < start / 4,
            "expected a large reduction: {} -> {}",
            start,
            size(&r.case)
        );
        // The minimized program still compiles (the predicate demanded it).
        lang::compile("s", &r.case.source()).unwrap();
    }

    /// A predicate keyed on a specific source property is preserved while
    /// everything else shrinks away.
    #[test]
    fn shrink_preserves_the_predicate() {
        let case = generate(11);
        let r = shrink(&case, 50_000, &mut |c| {
            let src = c.source();
            lang::compile("s", &src).is_ok() && src.contains("in0")
        });
        assert!(r.case.source().contains("in0"));
        // `main` must survive — a unit without it fails to compile.
        assert!(r.case.unit.funcs.iter().any(|f| f.name == "main"));
    }

    #[test]
    fn shrink_respects_budget() {
        let case = generate(3);
        let r = shrink(&case, 5, &mut |c| lang::compile("s", &c.source()).is_ok());
        assert!(r.evals <= 5);
    }

    #[test]
    fn shrink_is_deterministic() {
        let case = generate(19);
        let a = shrink(&case, 2_000, &mut |c| {
            lang::compile("s", &c.source()).is_ok()
        });
        let b = shrink(&case, 2_000, &mut |c| {
            lang::compile("s", &c.source()).is_ok()
        });
        assert_eq!(a.case.source(), b.case.source());
        assert_eq!(a.evals, b.evals);
    }
}
