//! The multi-oracle differential harness.
//!
//! A generated program carries no expected output — correctness is defined
//! by agreement. [`check`] runs the program through every engine pair the
//! repo maintains and reports each disagreement as a [`Finding`]:
//!
//! | oracle | pair | compared |
//! |---|---|---|
//! | build | frontend + verify-each checkers | acceptance (generated programs are well-typed by construction) |
//! | interp | tree-walk reference vs predecoded fast path | full `Result` — outputs, return value, stats, traps |
//! | sim | reference engine vs fast path vs block-fused turbo | outputs/cycles/counts/activity exactly, energy within `REL_TOL` |
//! | arch | BITSPEC (Max/Avg/Min), NoSpec vs BASELINE | output stream + trap behaviour |
//! | cross | interpreter vs simulator, per config | output stream + trap behaviour |
//!
//! The BITSPEC/NoSpec configs run with `empirical_gate: false` so the
//! squeezed code always ships — the gate would otherwise quietly fall back
//! to the baseline codegen and mask squeezer bugs. `verify_each` stays on:
//! a checker rejection of generated (legal) code is itself a finding.

use crate::gen::Case;
use bitspec::{
    build_for_fuzz, simulate_with, Arch, BuildConfig, Compiled, Engine, SimConfig, Workload,
};
use interp::{ExecError, Heuristic, Interpreter, RunResult};
use sim::SimResult;

/// Relative tolerance for energy components (float summation order may
/// differ between the two simulator engines).
pub const REL_TOL: f64 = 1e-6;

/// Dynamic-instruction budget for interpreter runs (profiling included).
/// Generated programs are bounded by construction (constant loop bounds,
/// ≲10M dynamic IR instructions worst-case), so a legitimate program never
/// comes near this. Shrink candidates, however, can mutate a loop-step
/// constant to zero — without a bound each such candidate burns the
/// interpreter's 2×10⁹ default fuel across every engine run and stalls
/// the shrinker for minutes.
pub const INTERP_FUEL: u64 = 50_000_000;

/// Simulator fuel: machine instructions per IR instruction vary by config,
/// so the bound is looser — far above any legitimate program, but still
/// cutting a degenerate candidate off in well under a second.
pub const SIM_FUEL: u64 = 200_000_000;

/// Classification of a divergence (stable names — corpus entries key on
/// these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// The frontend rejected a generated (well-typed) program.
    Compile,
    /// A verify-each checker rejected legal code.
    Verify,
    /// The profiling run trapped — generated programs are trap-free by
    /// construction (guarded denominators, masked indices, counted loops).
    Trap,
    /// The pipeline panicked. Reachable when a program escapes the
    /// back-end's supported subset (e.g. 64-bit division); the generator
    /// stays inside it, so a panic on a generated program is a finding.
    Panic,
    /// Interpreter tree-walk vs fast path disagreed.
    InterpEngines,
    /// A simulator engine (fast or turbo) disagreed with the reference.
    SimEngines,
    /// A speculative config's outputs/trap differ from BASELINE.
    ArchOutputs,
    /// Interpreter and simulator disagree on the same compiled module.
    InterpVsSim,
}

impl Kind {
    /// The stable textual name (corpus header / summary key).
    pub fn name(self) -> &'static str {
        match self {
            Kind::Compile => "compile",
            Kind::Verify => "verify",
            Kind::Trap => "trap",
            Kind::Panic => "panic",
            Kind::InterpEngines => "interp-engines",
            Kind::SimEngines => "sim-engines",
            Kind::ArchOutputs => "arch-outputs",
            Kind::InterpVsSim => "interp-vs-sim",
        }
    }

    /// Parses [`Kind::name`] back (corpus loader).
    pub fn parse(s: &str) -> Option<Kind> {
        Some(match s {
            "compile" => Kind::Compile,
            "verify" => Kind::Verify,
            "trap" => Kind::Trap,
            "panic" => Kind::Panic,
            "interp-engines" => Kind::InterpEngines,
            "sim-engines" => Kind::SimEngines,
            "arch-outputs" => Kind::ArchOutputs,
            "interp-vs-sim" => Kind::InterpVsSim,
            _ => return None,
        })
    }
}

/// One observed divergence.
#[derive(Debug, Clone)]
pub struct Finding {
    pub kind: Kind,
    /// Which config/pair produced it, plus the disagreeing values.
    pub detail: String,
}

/// The config matrix every generated program is pushed through.
///
/// Order matters: index 0 is BASELINE (the reference everything else is
/// compared against) and `build_for_fuzz` pre-warms the shared pipeline
/// stages from it.
pub fn config_matrix() -> Vec<(String, BuildConfig)> {
    let mut cfgs = vec![("baseline".to_string(), BuildConfig::baseline())];
    for h in Heuristic::ALL {
        cfgs.push((
            format!("bitspec-{h:?}").to_lowercase(),
            BuildConfig {
                empirical_gate: false,
                ..BuildConfig::bitspec_with(h)
            },
        ));
    }
    cfgs.push((
        "nospec".to_string(),
        BuildConfig {
            arch: Arch::NoSpec,
            empirical_gate: false,
            ..BuildConfig::baseline()
        },
    ));
    cfgs
}

/// Runs every oracle over `case`; the empty vec means full agreement.
pub fn check(case: &Case) -> Vec<Finding> {
    check_workload(&case.workload())
}

/// [`check`] behind a panic guard: a panic anywhere in the pipeline (build,
/// either interpreter engine, either simulator engine) becomes a
/// [`Kind::Panic`] finding instead of tearing down the fuzzing process.
/// The stage cache stays sound across an unwind — pipeline work runs
/// outside its locks.
pub fn check_protected(case: &Case) -> Vec<Finding> {
    let w = case.workload();
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check_workload(&w))) {
        Ok(findings) => findings,
        Err(payload) => vec![Finding {
            kind: Kind::Panic,
            detail: format!("pipeline panicked: {}", panic_message(&payload)),
        }],
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string payload>".to_string())
}

/// [`check`], but starting from an already-rendered workload (corpus
/// replay enters here — a stored source must not depend on the generator).
pub fn check_workload(w: &Workload) -> Vec<Finding> {
    // Bound every run (see [`INTERP_FUEL`]): degenerate shrink candidates
    // must fail fast, not exhaust the interpreter's default fuel.
    let w = &Workload {
        profile_fuel: Some(INTERP_FUEL),
        ..w.clone()
    };
    let mut findings = Vec::new();
    let cfgs = config_matrix();
    let configs: Vec<BuildConfig> = cfgs.iter().map(|(_, c)| c.clone()).collect();
    let built = build_for_fuzz(w, &configs, configs.len());

    let mut compiled: Vec<(&str, &Compiled)> = Vec::new();
    for ((name, _), res) in cfgs.iter().zip(&built) {
        match res {
            Ok(c) => compiled.push((name, c)),
            Err(bitspec::BuildError::Compile(e)) => findings.push(Finding {
                kind: Kind::Compile,
                detail: format!("[{name}] frontend rejected generated program: {e}"),
            }),
            // Fuel exhaustion is not a trap: only shrink-mutated
            // candidates with degenerate (infinite) loops reach the
            // bound, and those must read as "does not reproduce", never
            // as a Trap the shrinker could latch onto.
            Err(bitspec::BuildError::Profile(ExecError::OutOfFuel)) => {}
            Err(e @ bitspec::BuildError::Profile(_)) => findings.push(Finding {
                kind: Kind::Trap,
                detail: format!("[{name}] {e}"),
            }),
            Err(e) => findings.push(Finding {
                kind: Kind::Verify,
                detail: format!("[{name}] {e}"),
            }),
        }
    }
    let Some(&(_, baseline)) = compiled.first().filter(|(n, _)| *n == "baseline") else {
        // Without a baseline there is nothing to compare against; the
        // build failure above is the finding.
        return findings;
    };

    // Oracle: interpreter tree-walk vs fast path, on the untransformed
    // baseline module and on every squeezed module (speculative regions
    // take different code paths in the two engines).
    for &(name, c) in &compiled {
        let r_ref = run_interp(c, w, true);
        let r_fast = run_interp(c, w, false);
        if r_ref != r_fast {
            findings.push(Finding {
                kind: Kind::InterpEngines,
                detail: format!("[{name}] reference {r_ref:?} vs fast {r_fast:?}"),
            });
        }
    }

    // Oracle: simulator reference engine vs fast path vs turbo, per config.
    // Both optimized engines are held to the reference independently so a
    // finding names the engine that broke.
    for &(name, c) in &compiled {
        let s_ref = simulate_with(c, w, &sim_cfg(Engine::Reference));
        for (leg, engine) in [("fast", Engine::Fast), ("turbo", Engine::Turbo)] {
            let s_leg = simulate_with(c, w, &sim_cfg(engine));
            match (&s_ref, &s_leg) {
                (Ok(a), Ok(b)) => {
                    if let Some(diff) = sim_diff(a, b) {
                        findings.push(Finding {
                            kind: Kind::SimEngines,
                            detail: format!("[{name}] {leg}: {diff}"),
                        });
                    }
                }
                (Err(a), Err(b)) if a == b => {}
                _ => findings.push(Finding {
                    kind: Kind::SimEngines,
                    detail: format!(
                        "[{name}] trap asymmetry: reference {s_ref:?} vs {leg} {s_leg:?}"
                    ),
                }),
            }
        }
    }

    // Oracle: every speculative config agrees with BASELINE on the
    // observable output stream (Theorem 3.1), including trap behaviour.
    // Failing cases carry the pass-manager's triage probe: the first
    // registered pass whose IR fingerprint diverges from the baseline
    // build pins down which pipeline layer introduced the difference
    // ("squeeze" is expected for speculative configs; anything earlier
    // means a shared stage or its cache broke).
    let base_sim = simulate_with(baseline, w, &sim_cfg(Engine::Turbo));
    for &(name, c) in &compiled[1..] {
        let r = simulate_with(c, w, &sim_cfg(Engine::Turbo));
        match (&base_sim, &r) {
            (Ok(b), Ok(r)) => {
                if b.outputs != r.outputs {
                    findings.push(Finding {
                        kind: Kind::ArchOutputs,
                        detail: format!(
                            "[{name}] outputs {:?} vs baseline {:?}{}",
                            r.outputs,
                            b.outputs,
                            divergence_probe(baseline, c)
                        ),
                    });
                }
            }
            (Err(b), Err(r)) if b == r => {}
            _ => findings.push(Finding {
                kind: Kind::ArchOutputs,
                detail: format!(
                    "[{name}] trap asymmetry vs baseline: {:?} vs {:?}{}",
                    r.as_ref().err(),
                    base_sim.as_ref().err(),
                    divergence_probe(baseline, c)
                ),
            }),
        }
    }

    // Oracle: the interpreter and the simulator agree on each config's
    // *transformed* module (this crosses the backend: regalloc, emit,
    // Δ-skeleton layout all sit between the two).
    for &(name, c) in &compiled {
        let i = run_interp(c, w, false);
        let s = simulate_with(c, w, &sim_cfg(Engine::Turbo));
        match (&i, &s) {
            (Ok(i), Ok(s)) => {
                if i.outputs != s.outputs {
                    findings.push(Finding {
                        kind: Kind::InterpVsSim,
                        detail: format!(
                            "[{name}] interp outputs {:?} vs sim outputs {:?}",
                            i.outputs, s.outputs
                        ),
                    });
                }
            }
            (Err(_), Err(_)) => {} // both trapped; error spaces differ, so kinds aren't compared
            _ => findings.push(Finding {
                kind: Kind::InterpVsSim,
                detail: format!(
                    "[{name}] trap asymmetry: interp {:?} vs sim {:?}",
                    i.as_ref().err(),
                    s.as_ref().err()
                ),
            }),
        }
    }

    findings
}

/// Renders the first pass at which two builds' IR fingerprints diverge
/// (see [`bitspec::pipeline::first_divergent_pass`]) for a finding's
/// detail line; empty when the traces agree everywhere comparable.
fn divergence_probe(a: &Compiled, b: &Compiled) -> String {
    match bitspec::pipeline::first_divergent_pass(&a.trace.passes, &b.trace.passes) {
        Some(pass) => format!("; first divergent pass: {pass}"),
        None => String::new(),
    }
}

/// Runs a compiled module on the SIR interpreter with the workload's
/// evaluation inputs, selecting the tree-walk (`reference = true`) or
/// predecoded fast engine.
fn run_interp(c: &Compiled, w: &Workload, reference: bool) -> Result<RunResult, ExecError> {
    let mut i = Interpreter::new(&c.module);
    i.set_reference(reference);
    i.set_fuel(INTERP_FUEL);
    for (g, data) in &w.inputs {
        i.install_global(g, data);
    }
    i.run("main", &[])
}

/// The simulator configuration every oracle run uses: default DTS/energy
/// model, [`SIM_FUEL`] budget, the given engine.
fn sim_cfg(engine: Engine) -> SimConfig {
    SimConfig {
        engine,
        fuel: SIM_FUEL,
        ..SimConfig::default()
    }
}

/// The sim-engine equivalence contract: everything integral bit-identical,
/// energy components within [`REL_TOL`]. Returns a description of the first
/// violated field.
fn sim_diff(a: &SimResult, b: &SimResult) -> Option<String> {
    if a.outputs != b.outputs {
        return Some(format!("outputs {:?} vs {:?}", a.outputs, b.outputs));
    }
    if a.cycles != b.cycles {
        return Some(format!("cycles {} vs {}", a.cycles, b.cycles));
    }
    if a.counts != b.counts {
        return Some(format!("counts {:?} vs {:?}", a.counts, b.counts));
    }
    if a.activity != b.activity {
        return Some(format!("activity {:?} vs {:?}", a.activity, b.activity));
    }
    for (name, x, y) in [
        ("alu", a.energy.alu, b.energy.alu),
        ("regfile", a.energy.regfile, b.energy.regfile),
        ("icache", a.energy.icache, b.energy.icache),
        ("dcache", a.energy.dcache, b.energy.dcache),
        ("pipeline", a.energy.pipeline, b.energy.pipeline),
    ] {
        if !rel_close(x, y) {
            return Some(format!("energy.{name} {x} vs {y}"));
        }
    }
    None
}

fn rel_close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs());
    scale == 0.0 || (a - b).abs() <= REL_TOL * scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn matrix_has_baseline_first_and_all_heuristics() {
        let m = config_matrix();
        assert_eq!(m[0].0, "baseline");
        assert_eq!(m.len(), 2 + Heuristic::ALL.len());
        assert!(m.iter().skip(1).all(|(_, c)| !c.empirical_gate));
    }

    #[test]
    fn clean_seed_produces_no_findings() {
        let case = generate(42);
        let findings = check(&case);
        assert!(
            findings.is_empty(),
            "seed 42 diverged: {:?}",
            findings.iter().map(|f| &f.detail).collect::<Vec<_>>()
        );
    }

    #[test]
    fn divergence_probe_points_at_the_squeezer() {
        // Two speculative configs whose only difference is the squeezer
        // heuristic share every stage up to `profile`; the probe must
        // name `squeeze` as the first fingerprint divergence. The loop is
        // data-dependent so the expander cannot fold it away, and the
        // accumulator exceeds 8 bits so Max and Min select differently.
        let data: Vec<u8> = (0..64u32).map(|i| (i * 41 + 3) as u8).collect();
        let w = Workload::from_source(
            "probe",
            "global u8 data[64];
             void main() {
                u32 s = 0;
                for (u32 i = 0; i < 2000; i++) { s += data[i & 63]; }
                out(s);
             }",
        )
        .with_input("data", data);
        let cfgs = vec![
            BuildConfig {
                empirical_gate: false,
                ..BuildConfig::bitspec_with(Heuristic::Max)
            },
            BuildConfig {
                empirical_gate: false,
                ..BuildConfig::bitspec_with(Heuristic::Min)
            },
        ];
        let built = build_for_fuzz(&w, &cfgs, 2);
        let a = built[0].as_ref().expect("max builds");
        let b = built[1].as_ref().expect("min builds");
        assert_eq!(divergence_probe(a, a), "");
        assert_eq!(
            bitspec::pipeline::first_divergent_pass(&a.trace.passes, &b.trace.passes).as_deref(),
            Some("squeeze")
        );
    }

    #[test]
    fn rel_close_tolerates_summation_noise() {
        assert!(rel_close(1.0, 1.0 + 1e-9));
        assert!(!rel_close(1.0, 1.01));
        assert!(rel_close(0.0, 0.0));
    }
}
