//! Seeded random mini-C program generator, biased toward bitwidth-
//! speculation hazards.
//!
//! Programs are built as [`lang::ast`] values and rendered through
//! [`lang::print`], so every emitted program is well-formed by
//! construction (the oracle treats a frontend rejection as a finding in
//! its own right). The bias knobs target exactly the places per-variable
//! bitwidth speculation can go wrong:
//!
//! * **Boundary constants** — initializers and literals cluster around
//!   the 8/16-bit slice limits (254…257, 65535…65537), where a squeezed
//!   add/sub first overflows its slice.
//! * **Boundary-crossing loops** — induction variables start near a
//!   slice limit and step across it, so a MAX/AVG profile trained on the
//!   early iterations misspeculates mid-loop and exercises the handler
//!   re-execution path — repeatedly, which also covers handler re-entry.
//! * **Mixed-width and signed/unsigned casts** — every expression site
//!   can wrap its operand in a narrowing or sign-flipping cast.
//! * **Squeezable helper calls** — small helper functions with narrow
//!   parameter types, called from hot loops with values derived from the
//!   input array.
//! * **Adversarial train/eval splits** — the input array's training
//!   bytes are biased small (producing aggressive narrow profiles) while
//!   the evaluation bytes mix in wide values, so speculation planted by
//!   the profile must recover at runtime.
//!
//! All indices are masked to power-of-two array bounds and every
//! division's denominator is `| 1`-guarded, so generated programs cannot
//! fault; loops are counted with positive constant steps, so they
//! terminate. Any trap or fuel exhaustion at run time is therefore a
//! real finding, not generator noise.

use crate::Rng;
use bitspec::Workload;
use lang::ast::*;

/// One generated test case: the AST (the shrinker edits this), plus the
/// adversarial eval/train input split for the program's input array.
#[derive(Debug, Clone)]
pub struct Case {
    pub seed: u64,
    pub unit: Unit,
    /// Evaluation inputs: (global name, bytes).
    pub inputs: Vec<(String, Vec<u8>)>,
    /// Training (profiling) inputs.
    pub train_inputs: Vec<(String, Vec<u8>)>,
}

impl Case {
    /// Renders the case as a runnable workload.
    pub fn workload(&self) -> Workload {
        let mut w = Workload::from_source("fuzz", lang::print::unit(&self.unit));
        for (g, d) in &self.inputs {
            w = w.with_input(g, d.clone());
        }
        for (g, d) in &self.train_inputs {
            w = w.with_train_input(g, d.clone());
        }
        w
    }

    /// The rendered source (what a corpus entry stores).
    pub fn source(&self) -> String {
        lang::print::unit(&self.unit)
    }
}

/// Generates the program for `seed`.
pub fn generate(seed: u64) -> Case {
    let mut g = Gen {
        rng: Rng::new(seed),
        arrays: Vec::new(),
        helpers: Vec::new(),
        next_iv: 0,
    };
    g.unit(seed)
}

/// Scalar types the generator draws from, biased toward narrow widths
/// (the interesting ones for slice speculation).
const SCALARS: [ScalarType; 12] = [
    ScalarType::U8,
    ScalarType::U8,
    ScalarType::U8,
    ScalarType::U16,
    ScalarType::U16,
    ScalarType::U32,
    ScalarType::U32,
    ScalarType::I8,
    ScalarType::I8,
    ScalarType::I16,
    ScalarType::I32,
    ScalarType::U64,
];

/// Constants clustered on the 8/16-bit slice boundaries.
const BOUNDARY: [u64; 18] = [
    0, 1, 2, 7, 15, 100, 127, 128, 200, 254, 255, 256, 257, 300, 511, 65535, 65536, 65537,
];

struct ArrayInfo {
    name: String,
    /// Power-of-two element count (indices are masked with `len - 1`).
    len: u32,
}

struct HelperInfo {
    name: String,
    params: Vec<Type>,
}

struct Gen {
    rng: Rng,
    arrays: Vec<ArrayInfo>,
    helpers: Vec<HelperInfo>,
    next_iv: u32,
}

/// Variables in scope while generating a function body: assignable
/// scalars plus read-only loop induction variables.
#[derive(Default)]
struct Scope {
    vars: Vec<String>,
    read_only: Vec<String>,
}

impl Scope {
    fn readable(&self) -> Vec<&str> {
        self.vars
            .iter()
            .chain(self.read_only.iter())
            .map(String::as_str)
            .collect()
    }
}

fn e(kind: ExprKind) -> Expr {
    Expr {
        kind,
        line: 0,
        col: 0,
    }
}

fn int(v: u64) -> Expr {
    e(ExprKind::Int(v))
}

fn ident(n: &str) -> Expr {
    e(ExprKind::Ident(n.to_string()))
}

fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
    e(ExprKind::Binary(op, Box::new(l), Box::new(r)))
}

impl Gen {
    fn unit(&mut self, seed: u64) -> Case {
        let mut unit = Unit::default();

        // The input array: always present, always a power-of-two length.
        let in_len = 1u32 << self.rng.range(3, 7); // 8..64 elements
        unit.globals.push(GlobalDef {
            name: "in0".into(),
            elem: ScalarType::U8,
            len: in_len,
            init: Vec::new(),
            line: 0,
        });
        self.arrays.push(ArrayInfo {
            name: "in0".into(),
            len: in_len,
        });

        // Optionally a second, initialized global.
        if self.rng.chance(0.5) {
            let len = 1u32 << self.rng.range(2, 5); // 4..16
            let init = (0..len).map(|_| *self.rng.pick(&BOUNDARY)).collect();
            unit.globals.push(GlobalDef {
                name: "tab".into(),
                elem: *self
                    .rng
                    .pick(&[ScalarType::U16, ScalarType::U32, ScalarType::I16]),
                len,
                init,
                line: 0,
            });
            self.arrays.push(ArrayInfo {
                name: "tab".into(),
                len,
            });
        }

        // Squeezable helper functions (narrow params, no calls of their
        // own), generated before `main` so calls resolve.
        let n_helpers = self.rng.range(0, 3);
        for h in 0..n_helpers {
            unit.funcs.push(self.helper(h));
        }

        unit.funcs.push(self.main_fn());

        // Adversarial train/eval split for the input array: train bytes
        // biased small (narrow profiles), eval bytes mixing in wide
        // values (forced misspeculation + handler re-execution).
        let train: Vec<u8> = (0..in_len).map(|_| self.rng.range(0, 40) as u8).collect();
        let eval: Vec<u8> = (0..in_len)
            .map(|_| {
                if self.rng.chance(0.35) {
                    self.rng.range(128, 256) as u8
                } else {
                    self.rng.range(0, 64) as u8
                }
            })
            .collect();
        Case {
            seed,
            unit,
            inputs: vec![("in0".into(), eval)],
            train_inputs: vec![("in0".into(), train)],
        }
    }

    fn helper(&mut self, idx: u64) -> FuncDef {
        let name = format!("f{idx}");
        let nparams = self.rng.range(1, 4) as usize;
        let params: Vec<(Type, String)> = (0..nparams)
            .map(|p| (self.rng.pick(&SCALARS).as_type(), format!("p{p}")))
            .collect();
        let ret = self.rng.pick(&SCALARS).as_type();
        let mut scope = Scope::default();
        for (_, n) in &params {
            scope.vars.push(n.clone());
        }
        let mut body = Vec::new();
        // A couple of local temporaries over the parameters.
        for t in 0..self.rng.range(1, 3) {
            let vn = format!("t{t}");
            let init = self.expr(&scope, 2);
            body.push(Stmt::Decl(
                self.rng.pick(&SCALARS).as_type(),
                vn.clone(),
                init,
            ));
            scope.vars.push(vn);
        }
        if self.rng.chance(0.4) {
            let cond = self.cond(&scope);
            let then = vec![self.assign_stmt(&scope)];
            let els = if self.rng.chance(0.5) {
                vec![self.assign_stmt(&scope)]
            } else {
                Vec::new()
            };
            body.push(Stmt::If(cond, then, els));
        }
        body.push(Stmt::Return(Some(self.expr(&scope, 2))));
        self.helpers.push(HelperInfo {
            name: name.clone(),
            params: params.iter().map(|(t, _)| *t).collect(),
        });
        FuncDef {
            name,
            params,
            ret,
            body,
            line: 0,
        }
    }

    fn main_fn(&mut self) -> FuncDef {
        let mut scope = Scope::default();
        let mut body = Vec::new();

        // Declarations: widths biased narrow, initializers on boundaries.
        let nvars = self.rng.range(3, 7);
        for v in 0..nvars {
            let name = format!("v{v}");
            let ty = self.rng.pick(&SCALARS).as_type();
            let init = if self.rng.chance(0.7) {
                int(*self.rng.pick(&BOUNDARY))
            } else {
                int(self.rng.range(0, 1 << 16))
            };
            body.push(Stmt::Decl(ty, name.clone(), init));
            scope.vars.push(name);
        }
        // Occasionally a local scratch array.
        if self.rng.chance(0.3) {
            let len = 1u32 << self.rng.range(2, 4); // 4..8
            body.push(Stmt::ArrayDecl(
                *self.rng.pick(&[ScalarType::U8, ScalarType::U16]),
                "buf".into(),
                len,
            ));
            self.arrays.push(ArrayInfo {
                name: "buf".into(),
                len,
            });
        }

        let nloops = self.rng.range(1, 4);
        for _ in 0..nloops {
            body.push(self.loop_stmt(&mut scope, 0));
        }

        // Observability: print every variable and a couple of array cells.
        for v in scope.vars.clone() {
            body.push(Stmt::Out(ident(&v)));
        }
        for a in 0..self.arrays.len().min(2) {
            let arr = &self.arrays[a];
            let idx = self.rng.range(0, u64::from(arr.len));
            let name = arr.name.clone();
            body.push(Stmt::Out(e(ExprKind::Index(
                Box::new(ident(&name)),
                Box::new(int(idx)),
            ))));
        }

        FuncDef {
            name: "main".into(),
            params: Vec::new(),
            ret: Type::Void,
            body,
            line: 0,
        }
    }

    /// A loop construct: counted `for`/`while`/`do-while`, trip counts
    /// biased to cross the 8-bit (and occasionally 16-bit) slice limits.
    fn loop_stmt(&mut self, scope: &mut Scope, depth: u32) -> Stmt {
        let iv = format!("i{}", self.next_iv);
        self.next_iv += 1;
        // (start, limit, step): spans chosen so the induction variable's
        // *early* values fit a byte slice while later ones do not, or
        // cross the 16-bit limit with a strided step.
        let (start, limit, step) = if depth > 0 {
            (0, self.rng.range(2, 30), 1)
        } else {
            match self.rng.range(0, 5) {
                0 => (0, self.rng.range(5, 60), 1), // narrow
                1 => (self.rng.range(200, 256), self.rng.range(260, 320), 1), // cross 255
                2 => (0, self.rng.range(256, 700), 1), // cross from 0
                3 => (65500, self.rng.range(65540, 65600), self.rng.range(1, 4)), // cross 65535
                _ => (
                    self.rng.range(0, 128),
                    self.rng.range(300, 900),
                    self.rng.range(1, 3),
                ),
            }
        };
        let body = self.loop_body(scope, &iv, depth, /*allow_continue=*/ true);
        let kind = self.rng.range(0, 4);
        match kind {
            0 | 1 => {
                // for (u32 iv = start; iv < limit; iv += step)
                let init = Stmt::Decl(Type::U32, iv.clone(), int(start));
                let cond = bin(BinOp::Lt, ident(&iv), int(limit));
                let step = Stmt::Assign(
                    LValue::Var(iv.clone()),
                    bin(BinOp::Add, ident(&iv), int(step)),
                );
                Stmt::For(Box::new(Some(init)), Some(cond), Box::new(Some(step)), body)
            }
            kind => {
                // Counted while/do-while: the increment is the last body
                // statement, so `continue` is disallowed in these bodies.
                let mut body = self.loop_body(scope, &iv, depth, false);
                body.push(Stmt::Assign(
                    LValue::Var(iv.clone()),
                    bin(BinOp::Add, ident(&iv), int(step)),
                ));
                let cond = bin(BinOp::Lt, ident(&iv), int(limit));
                let decl = Stmt::Decl(Type::U32, iv.clone(), int(start));
                let looped = if kind == 2 {
                    Stmt::While(cond, body)
                } else {
                    Stmt::DoWhile(body, cond)
                };
                // Wrap in an if(true) so the decl scopes cleanly even when
                // two loops reuse variable positions.
                Stmt::If(e(ExprKind::Bool(true)), vec![decl, looped], Vec::new())
            }
        }
    }

    fn loop_body(
        &mut self,
        scope: &mut Scope,
        iv: &str,
        depth: u32,
        allow_continue: bool,
    ) -> Vec<Stmt> {
        scope.read_only.push(iv.to_string());
        let mut body = Vec::new();
        let n = self.rng.range(2, 6);
        for _ in 0..n {
            let roll = self.rng.next_u64() % 100;
            let stmt = match roll {
                0..=44 => self.assign_stmt(scope),
                45..=59 => self.array_write(scope),
                60..=74 => {
                    let cond = self.cond(scope);
                    let then = vec![self.assign_stmt(scope)];
                    let els = if self.rng.chance(0.4) {
                        vec![self.assign_stmt(scope)]
                    } else {
                        Vec::new()
                    };
                    Stmt::If(cond, then, els)
                }
                75..=82 if !self.helpers.is_empty() => self.call_stmt(scope),
                83..=88 if depth == 0 => self.loop_stmt(scope, depth + 1),
                89..=92 => Stmt::Out(self.expr(scope, 1)),
                93..=95 if allow_continue => {
                    Stmt::If(self.cond(scope), vec![Stmt::Continue], Vec::new())
                }
                96..=97 => Stmt::If(self.cond(scope), vec![Stmt::Break], Vec::new()),
                _ => self.assign_stmt(scope),
            };
            body.push(stmt);
        }
        scope.read_only.pop();
        body
    }

    /// `v = <hazard expr>;`
    fn assign_stmt(&mut self, scope: &Scope) -> Stmt {
        let dst = self.rng.pick(&scope.vars).clone();
        let value = self.expr(scope, 3);
        Stmt::Assign(LValue::Var(dst), value)
    }

    /// `arr[e & mask] = <expr>;`
    fn array_write(&mut self, scope: &Scope) -> Stmt {
        let a = self.rng.range(0, self.arrays.len() as u64) as usize;
        let (name, len) = (self.arrays[a].name.clone(), self.arrays[a].len);
        let idx = self.masked_index(scope, len);
        let value = self.expr(scope, 2);
        Stmt::Assign(LValue::Index(ident(&name), idx), value)
    }

    /// `v = fK(args);`
    fn call_stmt(&mut self, scope: &Scope) -> Stmt {
        let h = self.rng.range(0, self.helpers.len() as u64) as usize;
        let (name, nargs) = (self.helpers[h].name.clone(), self.helpers[h].params.len());
        let args = (0..nargs).map(|_| self.expr(scope, 2)).collect();
        let dst = self.rng.pick(&scope.vars).clone();
        Stmt::Assign(LValue::Var(dst), e(ExprKind::Call(name, args)))
    }

    /// An always-in-bounds index expression: `(e) & (len - 1)`.
    fn masked_index(&mut self, scope: &Scope, len: u32) -> Expr {
        let base = self.expr(scope, 1);
        bin(BinOp::And, base, int(u64::from(len - 1)))
    }

    /// A boolean-ish condition.
    fn cond(&mut self, scope: &Scope) -> Expr {
        let l = self.expr(scope, 1);
        let r = if self.rng.chance(0.7) {
            int(*self.rng.pick(&BOUNDARY))
        } else {
            self.expr(scope, 1)
        };
        let op = *self.rng.pick(&[
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::Eq,
            BinOp::Ne,
        ]);
        bin(op, l, r)
    }

    /// A hazard-biased expression of bounded depth. Divisions are
    /// `| 1`-guarded; array reads are mask-bounded; everything else is
    /// fully defined at every width.
    fn expr(&mut self, scope: &Scope, depth: u32) -> Expr {
        if depth == 0 || self.rng.chance(0.25) {
            return self.leaf(scope);
        }
        match self.rng.next_u64() % 100 {
            // Arithmetic near overflow: add/sub/mul with boundary operands.
            0..=34 => {
                let op = *self
                    .rng
                    .pick(&[BinOp::Add, BinOp::Add, BinOp::Sub, BinOp::Mul]);
                let l = self.expr(scope, depth - 1);
                let r = if self.rng.chance(0.4) {
                    int(*self.rng.pick(&BOUNDARY))
                } else {
                    self.expr(scope, depth - 1)
                };
                bin(op, l, r)
            }
            // Bitwise ops (speculation-friendly: these never misspeculate).
            35..=49 => {
                let op = *self.rng.pick(&[BinOp::And, BinOp::Or, BinOp::Xor]);
                bin(op, self.expr(scope, depth - 1), self.expr(scope, depth - 1))
            }
            // Shifts (defined at any amount; biased small).
            50..=59 => {
                let op = *self.rng.pick(&[BinOp::Shl, BinOp::Shr]);
                bin(op, self.expr(scope, depth - 1), int(self.rng.range(0, 9)))
            }
            // Guarded division / remainder. Both operands are cast to
            // ≤32-bit types: 64-bit div/rem is outside the back-end's
            // supported subset (it panics by design — see DESIGN.md), so
            // the generator must never produce it. The `| 1` keeps the
            // denominator odd, hence nonzero at any width.
            60..=67 => {
                let op = *self.rng.pick(&[BinOp::Div, BinOp::Rem]);
                const NARROW: [ScalarType; 6] = [
                    ScalarType::U8,
                    ScalarType::U16,
                    ScalarType::U32,
                    ScalarType::I8,
                    ScalarType::I16,
                    ScalarType::I32,
                ];
                let tn = self.rng.pick(&NARROW).as_type();
                let td = self.rng.pick(&NARROW).as_type();
                let num = e(ExprKind::Cast(tn, Box::new(self.expr(scope, depth - 1))));
                let denom = bin(
                    BinOp::Or,
                    e(ExprKind::Cast(td, Box::new(self.expr(scope, depth - 1)))),
                    int(1),
                );
                bin(op, num, denom)
            }
            // Mixed-width / signed-unsigned casts.
            68..=84 => {
                let t = self.rng.pick(&SCALARS).as_type();
                e(ExprKind::Cast(t, Box::new(self.expr(scope, depth - 1))))
            }
            // Comparison folded into arithmetic (bool converts).
            85..=89 => {
                let c = self.cond(scope);
                e(ExprKind::Ternary(
                    Box::new(c),
                    Box::new(self.expr(scope, depth - 1)),
                    Box::new(self.expr(scope, depth - 1)),
                ))
            }
            90..=93 => e(ExprKind::Unary(
                *self.rng.pick(&[UnOp::Neg, UnOp::Not]),
                Box::new(self.expr(scope, depth - 1)),
            )),
            // Volatile load from an in-bounds global element.
            94..=95 => {
                let a = self.rng.range(0, self.arrays.len() as u64) as usize;
                let (name, len) = (self.arrays[a].name.clone(), self.arrays[a].len);
                let idx = self.masked_index(scope, len);
                e(ExprKind::VolatileLoad(Box::new(e(ExprKind::AddrOf(
                    Box::new(ident(&name)),
                    Box::new(idx),
                )))))
            }
            _ => self.leaf(scope),
        }
    }

    fn leaf(&mut self, scope: &Scope) -> Expr {
        match self.rng.next_u64() % 100 {
            0..=44 => {
                let names = scope.readable();
                let name = names[self.rng.range(0, names.len() as u64) as usize];
                ident(name)
            }
            45..=69 => int(*self.rng.pick(&BOUNDARY)),
            70..=79 => int(self.rng.range(0, 1 << 20)),
            _ => {
                // Array read (mask-bounded).
                let a = self.rng.range(0, self.arrays.len() as u64) as usize;
                let (name, len) = (self.arrays[a].name.clone(), self.arrays[a].len);
                let idx = self.masked_index(scope, len);
                e(ExprKind::Index(Box::new(ident(&name)), Box::new(idx)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            assert_eq!(generate(seed).source(), generate(seed).source());
        }
    }

    #[test]
    fn generated_programs_compile() {
        for seed in 0..60u64 {
            let case = generate(seed);
            let src = case.source();
            lang::compile("gen", &src).unwrap_or_else(|err| {
                panic!("seed {seed}: generated program rejected: {err}\n{src}")
            });
        }
    }

    #[test]
    fn generated_programs_roundtrip_through_printer() {
        for seed in 0..30u64 {
            let case = generate(seed);
            let src = case.source();
            let reparsed = lang::parse_unit(&src).unwrap();
            assert_eq!(
                src,
                lang::print::unit(&reparsed),
                "seed {seed}: print∘parse not a fixpoint"
            );
        }
    }

    #[test]
    fn train_and_eval_inputs_differ() {
        let mut distinct = 0;
        for seed in 0..20u64 {
            let case = generate(seed);
            if case.inputs[0].1 != case.train_inputs[0].1 {
                distinct += 1;
            }
        }
        assert!(distinct >= 15, "adversarial splits should be common");
    }
}
