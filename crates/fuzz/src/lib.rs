//! # fuzz — randomized differential testing for the BITSPEC pipeline
//!
//! The paper's Theorem 3.1 claims squeezing plus handler re-execution is
//! semantics-preserving. The repo holds four engine pairs to that claim
//! (tree-walk vs fast profiling interpreter, reference vs fast simulator,
//! squeezed vs unsqueezed codegen, interpreter vs simulator), but the
//! hand-written MiBench suite only exercises ~a dozen programs. This crate
//! supplies the missing input diversity:
//!
//! * [`gen`] — a seeded, std-only random mini-C program generator. It
//!   builds [`lang::ast`] values directly (round-tripped through
//!   [`lang::print`]) and biases toward bitwidth-speculation hazards:
//!   narrow arithmetic near slice-overflow boundaries, mixed-width and
//!   signed/unsigned casts, induction variables crossing the 8/16-bit
//!   limits, and calls into squeezable helper functions with adversarial
//!   train-vs-eval input splits.
//! * [`oracle`] — a multi-oracle differential harness: every generated
//!   program runs through every engine pair plus the verify-each checker
//!   stack, and any divergence in outputs, traps, cycle/energy counters
//!   or checker verdicts is a reported finding.
//! * [`shrink`] — an automatic minimizer: statement deletion, loop/branch
//!   unwrapping, expression simplification, constant reduction and input
//!   truncation, iterated to fixpoint while the divergence reproduces.
//! * [`corpus`] — minimized cases persist to `corpus/` as self-contained
//!   regression tests replayed by `tests/fuzz_corpus.rs`.
//!
//! The `fuzzer` binary drives seeded batches (`--seed/--iters/--jobs`)
//! across the [`bitspec::pool`] workers and writes a deterministic
//! summary; `ci.sh` runs a fixed-seed smoke batch on every change.

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod shrink;

/// A SplitMix64 generator (Steele et al.) — the same construction the
/// MiBench input synthesizer uses, kept local so the fuzzer only depends
/// on the compiler crates it tests. Every method consumes exactly one
/// stream step, so generated programs are stable across refactors of the
/// call sites.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator seeded with `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics when `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// A uniformly chosen element of `xs`.
    ///
    /// # Panics
    /// Panics when `xs` is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.range(0, xs.len() as u64) as usize]
    }
}

/// The per-iteration program seed for iteration `i` of a batch started
/// from `base`: sequential offsets into the SplitMix64 seed space, which
/// the mixer decorrelates. `fuzzer --seed <iter_seed> --iters 1`
/// reproduces any single iteration of a larger batch.
pub fn iter_seed(base: u64, i: u64) -> u64 {
    base.wrapping_add(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn pick_and_range_stay_in_bounds() {
        let mut r = Rng::new(3);
        for _ in 0..500 {
            assert!((2..9).contains(&r.range(2, 9)));
            assert!([1, 2, 3].contains(r.pick(&[1, 2, 3])));
        }
    }
}
