//! Differential fuzzing driver.
//!
//! ```text
//! fuzzer [--seed N] [--iters N] [--jobs N] [--budget N] [--out FILE] [--no-save]
//! ```
//!
//! Runs `iters` generated programs (seeds `seed`, `seed+1`, …) through the
//! multi-oracle harness, fanning iterations across the worker pool.
//! Divergences are minimized with the shrinker and persisted to the corpus
//! directory as `.minic` regression entries, and a deterministic JSON
//! summary — independent of `--jobs` and wall-clock — is printed to stdout
//! (and to `--out` when given). Exit status 1 signals at least one
//! divergence, so CI smoke batches fail loudly.
//!
//! Reproduce a single iteration of a batch with
//! `fuzzer --seed <that iteration's seed> --iters 1`.

use fuzz::oracle::Kind;
use fuzz::{gen, iter_seed, oracle, shrink};
use std::fmt::Write as _;
use std::process::ExitCode;

/// Iterations per pool batch: the process-wide stage cache is cleared
/// between batches so unbounded fuzzing runs in bounded memory.
const BATCH: usize = 256;

struct Args {
    seed: u64,
    iters: u64,
    jobs: usize,
    /// Shrinker budget (oracle evaluations per divergence).
    budget: u64,
    out: Option<String>,
    save: bool,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        seed: 1,
        iters: 100,
        jobs: bitspec::pool::jobs_for(&argv),
        budget: 2_000,
        out: None,
        save: true,
    };
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--seed" => args.seed = take(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--iters" => args.iters = take(&mut i)?.parse().map_err(|e| format!("--iters: {e}"))?,
            "--budget" => {
                args.budget = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?
            }
            "--out" => args.out = Some(take(&mut i)?),
            "--no-save" => args.save = false,
            // `--jobs N` / `-j N` / `-jN` are handled by `jobs_for` above;
            // skip their values here.
            "--jobs" | "-j" => {
                i += 1;
            }
            s if s.starts_with("-j") && s[2..].chars().all(|c| c.is_ascii_digit()) => {}
            s => return Err(format!("unknown argument `{s}`")),
        }
        i += 1;
    }
    Ok(args)
}

/// One divergence, after minimization.
struct Report {
    seed: u64,
    kind: Kind,
    detail: String,
    minimized_lines: usize,
    shrink_evals: u64,
    saved_as: Option<String>,
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzzer: {e}");
            eprintln!(
                "usage: fuzzer [--seed N] [--iters N] [--jobs N] [--budget N] [--out FILE] [--no-save]"
            );
            return ExitCode::from(2);
        }
    };

    // Pipeline panics are caught and classified (`Kind::Panic`), and the
    // shrinker probes candidates that panic by design (out-of-subset
    // programs) — keep each to one stderr line instead of a backtrace.
    std::panic::set_hook(Box::new(|info| {
        let loc = info
            .location()
            .map(|l| format!("{}:{}", l.file(), l.line()))
            .unwrap_or_else(|| "<unknown>".into());
        eprintln!("fuzzer: caught pipeline panic at {loc}");
    }));

    let mut reports: Vec<Report> = Vec::new();
    let mut done = 0u64;
    while done < args.iters {
        let batch = (args.iters - done).min(BATCH as u64);
        let base = args.seed.wrapping_add(done);
        let results = bitspec::pool::run_ordered(batch as usize, args.jobs, |i| {
            let seed = iter_seed(base, i as u64);
            let case = gen::generate(seed);
            (seed, oracle::check_protected(&case))
        });
        for (seed, findings) in results {
            for f in dedup_kinds(findings) {
                reports.push(minimize(seed, f, &args));
            }
        }
        done += batch;
        // Every generated program is distinct, so the memoized pipeline
        // stages never hit across iterations — drop them between batches.
        bitspec::stages::clear();
    }

    let summary = render_summary(&args, &mut reports);
    println!("{summary}");
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, format!("{summary}\n")) {
            eprintln!("fuzzer: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if reports.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// One finding per kind per seed: the oracle reports a divergence once per
/// config pair, but they minimize to the same root cause.
fn dedup_kinds(findings: Vec<oracle::Finding>) -> Vec<oracle::Finding> {
    let mut seen = Vec::new();
    let mut out = Vec::new();
    for f in findings {
        if !seen.contains(&f.kind) {
            seen.push(f.kind);
            out.push(f);
        }
    }
    out
}

fn minimize(seed: u64, finding: oracle::Finding, args: &Args) -> Report {
    eprintln!(
        "fuzzer: seed {seed}: {} divergence — shrinking (budget {})",
        finding.kind.name(),
        args.budget
    );
    let case = gen::generate(seed);
    let r = shrink::shrink_to_kind(&case, finding.kind, args.budget);
    let minimized_lines = r.case.source().lines().count();
    let saved_as = args.save.then(|| save_entry(seed, finding.kind, &r.case));
    Report {
        seed,
        kind: finding.kind,
        detail: finding.detail,
        minimized_lines,
        shrink_evals: r.evals,
        saved_as,
    }
}

fn save_entry(seed: u64, kind: Kind, case: &gen::Case) -> String {
    let entry = fuzz::corpus::Entry {
        kind: Some(kind),
        seed,
        source: case.source(),
        inputs: case.inputs.clone(),
        train_inputs: case.train_inputs.clone(),
    };
    let dir = fuzz::corpus::default_dir();
    let name = format!("found-{}-{seed}.minic", kind.name());
    let path = dir.join(&name);
    let _ = std::fs::create_dir_all(&dir);
    match std::fs::write(&path, entry.to_text()) {
        Ok(()) => path.display().to_string(),
        Err(e) => {
            eprintln!("fuzzer: cannot save corpus entry {}: {e}", path.display());
            format!("<unsaved: {e}>")
        }
    }
}

/// Hand-rolled JSON (std-only). Reports are sorted by (seed, kind) so the
/// summary is identical across `--jobs` settings.
fn render_summary(args: &Args, reports: &mut [Report]) -> String {
    reports.sort_by_key(|r| (r.seed, r.kind.name()));
    let mut by_kind: Vec<(&str, u64)> = Vec::new();
    for r in reports.iter() {
        match by_kind.iter_mut().find(|(k, _)| *k == r.kind.name()) {
            Some((_, n)) => *n += 1,
            None => by_kind.push((r.kind.name(), 1)),
        }
    }
    by_kind.sort();
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"seed\": {},", args.seed);
    let _ = writeln!(s, "  \"iters\": {},", args.iters);
    let _ = writeln!(s, "  \"divergences\": {},", reports.len());
    let _ = writeln!(
        s,
        "  \"by_kind\": {{{}}},",
        by_kind
            .iter()
            .map(|(k, n)| format!("\"{k}\": {n}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    s.push_str("  \"findings\": [");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n    {{\"seed\": {}, \"kind\": \"{}\", \"minimized_lines\": {}, \"shrink_evals\": {}, \"saved_as\": {}, \"detail\": \"{}\"}}",
            r.seed,
            r.kind.name(),
            r.minimized_lines,
            r.shrink_evals,
            match &r.saved_as {
                Some(p) => format!("\"{}\"", json_escape(p)),
                None => "null".to_string(),
            },
            json_escape(&r.detail),
        );
    }
    if !reports.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}");
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}
