//! Property: serial, parallel, and incrementally-edited builds agree.
//!
//! For seeded generated multi-function programs, the oracle config
//! matrix is built three ways — cold serial (`-j1`), cold parallel
//! (pool workers + per-function codegen workers), and incrementally
//! (the function cache primed by a one-function-edited variant of the
//! same program) — and every way must link bit-identical programs per
//! config. The sweep runs on the generator's default (expander-on)
//! pipeline and again with the expander disabled, where the generated
//! helpers survive to the backend as separate compilation units and the
//! incremental leg must actually serve functions from the cache.
//!
//! The "edit" mutates the AST the way a programmer would: one helper's
//! return expression is xored with a constant, changing exactly that
//! function's body (and, post-inlining, anything that absorbed it).
//!
//! The stage caches are process-global, so the test is a single
//! sequential function (`ci.sh` runs it as its parallel-build smoke).

use bitspec::{build_matrix, program_fingerprint, stages, BuildConfig, Workload};
use fuzz::gen::{generate, Case};
use fuzz::oracle::config_matrix;
use lang::ast::{BinOp, Expr, ExprKind, Stmt};

/// The case rendered as a workload with one helper's return expression
/// xored with a constant. `None` when the program has no helper to edit.
fn edited_workload(case: &Case) -> Option<Workload> {
    let mut unit = case.unit.clone();
    let f = unit.funcs.iter_mut().find(|f| f.name != "main")?;
    let Some(Stmt::Return(Some(e))) = f.body.last_mut() else {
        return None;
    };
    let old = e.clone();
    let wrap = |kind| Expr {
        kind,
        line: 0,
        col: 0,
    };
    *e = wrap(ExprKind::Binary(
        BinOp::Xor,
        Box::new(old),
        Box::new(wrap(ExprKind::Int(7))),
    ));
    let mut w = Workload::from_source("fuzz-edited", lang::print::unit(&unit));
    for (g, d) in &case.inputs {
        w = w.with_input(g, d.clone());
    }
    for (g, d) in &case.train_inputs {
        w = w.with_train_input(g, d.clone());
    }
    Some(w)
}

/// Builds the matrix and returns per-config program fingerprints plus
/// the builds' summed function-cache hits.
fn fingerprints(w: &Workload, cfgs: &[BuildConfig], workers: usize) -> (Vec<u64>, u32) {
    let mut hits = 0;
    let fps = build_matrix(w, cfgs, workers)
        .into_iter()
        .map(|r| {
            let c = r.unwrap_or_else(|e| panic!("{}: build failed: {e}", w.name));
            hits += c.stage_hits.fn_hits;
            program_fingerprint(&c.program)
        })
        .collect();
    (fps, hits)
}

#[test]
fn serial_parallel_incremental_agree() {
    // First three generated programs that actually have helper functions
    // (deterministic scan — the generator sometimes emits main-only
    // programs, which have nothing to edit).
    let mut cases: Vec<Case> = Vec::new();
    let mut seed = 0x5EED;
    while cases.len() < 3 {
        let case = generate(seed);
        if case.unit.funcs.len() >= 2 {
            cases.push(case);
        }
        seed += 1;
    }

    let oracle_cfgs: Vec<BuildConfig> = config_matrix().into_iter().map(|(_, c)| c).collect();
    let uninlined: Vec<BuildConfig> = oracle_cfgs
        .iter()
        .map(|c| {
            let mut c = c.clone();
            c.expander.enabled = false;
            c
        })
        .collect();

    for case in &cases {
        let w = case.workload();
        let we = edited_workload(case).expect("case has a helper");
        for (tag, cfgs, expect_fn_hits) in [
            ("expanded", &oracle_cfgs, false),
            ("uninlined", &uninlined, true),
        ] {
            // Cold serial reference.
            stages::clear();
            stages::set_codegen_workers(1);
            let (serial, _) = fingerprints(&w, cfgs, 1);

            // Cold parallel: pool workers over configs, codegen workers
            // over functions.
            stages::clear();
            stages::set_codegen_workers(8);
            let (parallel, _) = fingerprints(&w, cfgs, cfgs.len());
            stages::set_codegen_workers(1);
            assert_eq!(
                serial, parallel,
                "seed {:#x} [{tag}]: parallel build diverged from serial",
                case.seed
            );

            // Incremental: prime the caches with the edited variant, then
            // build the original — shared functions come from the cache,
            // and the result must still match the cold serial build.
            stages::clear();
            let _ = fingerprints(&we, cfgs, 1);
            let (incremental, fn_hits) = fingerprints(&w, cfgs, 1);
            assert_eq!(
                serial, incremental,
                "seed {:#x} [{tag}]: incremental build diverged from cold",
                case.seed
            );
            if expect_fn_hits {
                assert!(
                    fn_hits > 0,
                    "seed {:#x} [{tag}]: uninlined incremental build \
                     should hit the function cache",
                    case.seed
                );
            }
        }
    }
    stages::clear();
}
