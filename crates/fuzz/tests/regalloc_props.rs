//! Property tests for `backend::regalloc` over generated programs.
//!
//! For a seeded sweep of fuzzer-generated programs — both the frontend
//! module and squeezed modules with live speculative regions — every
//! function's allocation must satisfy [`backend::regalloc::validate`]:
//! no two live-overlapping vregs share a register slice, and frame slots
//! are pairwise disjoint. The squeezed variants matter most: handler-edge
//! liveness (equation 2) and write-through homing only arise there.

use backend::regalloc::{allocate, validate};
use backend::{isel, CodegenOpts};
use bitspec::{BuildConfig, Workload};
use fuzz::gen::generate;
use interp::Heuristic;

/// Allocates every function of `m` under `opts` and validates it.
fn validate_module(m: &sir::Module, opts: &CodegenOpts, what: &str) {
    let layout = interp::Layout::new(m);
    for fid in m.func_ids() {
        let mir = isel::select_function(m, fid, &layout, opts);
        let a = allocate(mir, opts);
        if let Err(e) = validate(&a) {
            panic!("{what}: allocation invariant violated: {e}");
        }
    }
}

/// The expanded + simplified (unsqueezed) module, as codegen receives it.
/// Raw frontend output is not a valid codegen input — the pipeline's
/// simplify pass folds shift amounts to immediates first.
fn baseline_module(w: &Workload, seed: u64) -> sir::Module {
    let c = bitspec::build(w, &BuildConfig::baseline())
        .unwrap_or_else(|e| panic!("seed {seed} does not build: {e}"));
    (*c.module).clone()
}

#[test]
fn generated_programs_allocate_validly() {
    for seed in 0..40 {
        let case = generate(seed);
        let m = baseline_module(&case.workload(), seed);
        for spill_prefer_orig in [true, false] {
            let opts = CodegenOpts {
                spill_prefer_orig,
                ..CodegenOpts::default()
            };
            validate_module(
                &m,
                &opts,
                &format!("seed {seed} (prefer_orig={spill_prefer_orig})"),
            );
        }
    }
    bitspec::stages::clear();
}

#[test]
fn squeezed_programs_allocate_validly() {
    // The Min heuristic squeezes hardest, producing the most regions,
    // handlers and handler-extended live ranges.
    for seed in 0..20 {
        let case = generate(seed);
        let w: Workload = case.workload();
        for h in [Heuristic::Min, Heuristic::Max] {
            let cfg = BuildConfig {
                empirical_gate: false,
                ..BuildConfig::bitspec_with(h)
            };
            let c = bitspec::build(&w, &cfg)
                .unwrap_or_else(|e| panic!("seed {seed} {h:?} does not build: {e}"));
            for spill_prefer_orig in [true, false] {
                let opts = CodegenOpts {
                    spill_prefer_orig,
                    ..CodegenOpts::default()
                };
                validate_module(
                    &c.module,
                    &opts,
                    &format!("seed {seed} {h:?} (prefer_orig={spill_prefer_orig})"),
                );
            }
        }
    }
    bitspec::stages::clear();
}

#[test]
fn compact_mode_allocates_validly() {
    for seed in 0..15 {
        let case = generate(seed);
        let m = baseline_module(&case.workload(), seed);
        let opts = CodegenOpts {
            bitspec: false,
            compact: true,
            ..CodegenOpts::default()
        };
        validate_module(&m, &opts, &format!("seed {seed} (compact)"));
    }
    bitspec::stages::clear();
}
