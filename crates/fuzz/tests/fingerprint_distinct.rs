//! The build cache's content fingerprint must tell generated programs
//! apart. The fuzzer runs thousands of near-identical programs through the
//! memoized stage pipeline in one process — if two programs differing only
//! in one constant or one operator collided, a cached artifact from one
//! would silently serve as the build of the other, and every divergence
//! the oracles reported downstream would be noise.

use bitspec::fingerprint::workload_key;
use bitspec::Workload;
use fuzz::gen::generate;

/// One-character source mutations: bump the first decimal digit found
/// after the header (changing a constant), or flip the first binary
/// operator. Both yield a program that differs in exactly one token.
fn bump_first_digit(src: &str) -> Option<String> {
    // Skip past `main() {` so array lengths in declarations keep their
    // power-of-two shape; any digit inside a body expression works.
    let body = src.find("main()")?;
    let off = src[body..].find(|c: char| c.is_ascii_digit())?;
    let i = body + off;
    let mut s = src.to_string();
    let old = s.as_bytes()[i];
    let new = if old == b'9' { b'0' } else { old + 1 };
    s.replace_range(i..=i, std::str::from_utf8(&[new]).unwrap());
    Some(s)
}

fn flip_first_operator(src: &str) -> Option<String> {
    for (from, to) in [(" + ", " - "), (" * ", " + "), (" ^ ", " & ")] {
        if let Some(i) = src.find(from) {
            let mut s = src.to_string();
            s.replace_range(i..i + from.len(), to);
            return Some(s);
        }
    }
    None
}

#[test]
fn constant_mutation_changes_fingerprint() {
    let mut checked = 0;
    for seed in 0..30 {
        let case = generate(seed);
        let w = case.workload();
        let Some(mutated) = bump_first_digit(&w.source) else {
            continue;
        };
        assert_ne!(mutated, w.source);
        let wm = Workload {
            source: mutated,
            ..w.clone()
        };
        assert_ne!(
            workload_key(&w),
            workload_key(&wm),
            "seed {seed}: constant bump not distinguished"
        );
        checked += 1;
    }
    assert!(checked >= 25, "only {checked}/30 programs had a constant");
}

#[test]
fn operator_mutation_changes_fingerprint() {
    let mut checked = 0;
    for seed in 0..30 {
        let case = generate(seed);
        let w = case.workload();
        let Some(mutated) = flip_first_operator(&w.source) else {
            continue;
        };
        let wm = Workload {
            source: mutated,
            ..w.clone()
        };
        assert_ne!(
            workload_key(&w),
            workload_key(&wm),
            "seed {seed}: operator flip not distinguished"
        );
        checked += 1;
    }
    assert!(checked >= 20, "only {checked}/30 programs had an operator");
}

#[test]
fn identical_programs_share_a_fingerprint() {
    for seed in [3, 17, 42] {
        let a = generate(seed).workload();
        let b = generate(seed).workload();
        assert_eq!(workload_key(&a), workload_key(&b));
    }
}

#[test]
fn input_bytes_change_the_fingerprint() {
    let w = generate(7).workload();
    let mut wm = w.clone();
    if let Some((_, data)) = wm.inputs.first_mut() {
        if let Some(b) = data.first_mut() {
            *b = b.wrapping_add(1);
        }
    }
    assert_ne!(workload_key(&w), workload_key(&wm));
}

#[test]
fn profile_fuel_is_part_of_the_identity() {
    let w = generate(7).workload();
    let bounded = Workload {
        profile_fuel: Some(1_000_000),
        ..w.clone()
    };
    assert_ne!(workload_key(&w), workload_key(&bounded));
}

/// Pairwise distinctness across a seed sweep: no two generated programs
/// (all structurally similar by construction) may collide.
#[test]
fn seed_sweep_is_collision_free() {
    let mut keys: Vec<(u64, u64)> = (0..200u64)
        .map(|s| (workload_key(&generate(s).workload()), s))
        .collect();
    keys.sort_unstable();
    for w in keys.windows(2) {
        assert_ne!(
            w[0].0, w[1].0,
            "seeds {} and {} collide on workload_key",
            w[0].1, w[1].1
        );
    }
}
