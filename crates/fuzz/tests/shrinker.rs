//! Planted-divergence shrinking, mirroring the PR-1 `mutations.rs`
//! pattern: instead of waiting for a real engine bug, emulate one
//! deterministically and check the minimizer does its job against it.
//!
//! The planted bug is the canonical bitwidth-misspeculation failure — an
//! engine that silently truncates observable values to their profiled
//! 8-bit slice (no handler, no re-execution). Any program whose output
//! stream carries a value above 255 "diverges" under it. The shrinker
//! must take full generated programs (dozens of lines, loops, helpers)
//! down to a hazard kernel of at most 15 lines while preserving the
//! divergence.

use fuzz::gen::{generate, Case};
use fuzz::shrink::{shrink, size};
use interp::Interpreter;

/// True output stream of the program on its eval inputs, `None` if it no
/// longer compiles or runs (shrink candidates may break either).
fn outputs(case: &Case) -> Option<Vec<u32>> {
    let w = case.workload();
    let m = lang::compile("t", &w.source).ok()?;
    let mut i = Interpreter::new(&m);
    i.set_fuel(50_000_000);
    for (g, data) in &w.inputs {
        i.install_global(g, data);
    }
    i.run("main", &[]).ok().map(|r| r.outputs)
}

/// The planted buggy engine: every observable value loses its top 24 bits.
fn truncating_engine(outputs: &[u32]) -> Vec<u32> {
    outputs.iter().map(|v| v & 0xFF).collect()
}

fn diverges_under_planted_bug(case: &Case) -> bool {
    match outputs(case) {
        Some(o) => truncating_engine(&o) != o,
        None => false,
    }
}

#[test]
fn planted_truncation_bug_shrinks_to_a_hazard_kernel() {
    let mut shrunk_any = false;
    for seed in 0..20u64 {
        let case = generate(seed);
        if !diverges_under_planted_bug(&case) {
            continue; // this seed's outputs all fit in 8 bits
        }
        let r = shrink(&case, 1_500, &mut |c| diverges_under_planted_bug(c));
        assert!(
            diverges_under_planted_bug(&r.case),
            "seed {seed}: shrinking lost the divergence"
        );
        let lines = r.case.source().lines().count();
        assert!(
            lines <= 15,
            "seed {seed}: minimized to {lines} lines (> 15):\n{}",
            r.case.source()
        );
        assert!(
            size(&r.case) < size(&case),
            "seed {seed}: no reduction at all"
        );
        shrunk_any = true;
    }
    assert!(shrunk_any, "no seed in 0..20 produced a wide output");
}

/// Shrinking is deterministic: same case, same predicate, same budget —
/// byte-identical minimized source. (Corpus entries and the fuzzer's JSON
/// summary both rely on this.)
#[test]
fn shrinking_is_deterministic() {
    let case = (0..20u64)
        .map(generate)
        .find(diverges_under_planted_bug)
        .expect("some seed in 0..20 produces a wide output");
    let a = shrink(&case, 600, &mut |c| diverges_under_planted_bug(c));
    let b = shrink(&case, 600, &mut |c| diverges_under_planted_bug(c));
    assert_eq!(a.case.source(), b.case.source());
    assert_eq!(a.evals, b.evals);
}
