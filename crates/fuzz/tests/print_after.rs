//! `BITSPEC_PRINT_AFTER` round-trips every corpus entry through
//! `sir::print` without panicking: with dump-after-all forced, every
//! middle-end pass on every saved regression case must render its module,
//! and the dumps must be parseable-looking SIR text. Also pins the
//! bit-identical guarantee: dumping must not change the built program.

use bitspec::pipeline::{self, PrintAfter};
use bitspec::{build, stages, BuildConfig};
use fuzz::corpus::{default_dir, load_dir};

#[test]
fn corpus_dumps_render_for_every_middle_end_pass() {
    let entries = match load_dir(&default_dir()) {
        Ok(e) => e,
        Err((file, e)) => panic!("corpus entry {file} failed to load: {e}"),
    };
    assert!(!entries.is_empty(), "corpus directory is empty");

    // Gate off keeps the whole build on this thread's print-after
    // override; verify-each stays on so a dump of a broken module would
    // be caught, not silently printed.
    let cfgs = [
        BuildConfig {
            empirical_gate: false,
            ..BuildConfig::bitspec()
        },
        BuildConfig::baseline(),
    ];
    for (file, entry) in &entries {
        let w = entry.workload(file);
        for cfg in &cfgs {
            let (plain, dumped) = pipeline::with_print_after(PrintAfter::All, || {
                let dumped = build(&w, cfg);
                (
                    pipeline::with_print_after(PrintAfter::None, || build(&w, cfg)),
                    dumped,
                )
            });
            // A corpus entry may legitimately fail to build (some are
            // verifier regressions) — but it must fail identically with
            // and without dumping, and never panic while printing.
            match (plain, dumped) {
                (Ok(p), Ok(d)) => {
                    assert_eq!(
                        backend::program_fingerprint(&p.program),
                        backend::program_fingerprint(&d.program),
                        "{file}: dumping changed the built program"
                    );
                    for t in &d.trace.passes {
                        if ["expand", "simplify", "dce", "squeeze"].contains(&t.name.as_str()) {
                            let dump = t.dump.as_deref().unwrap_or_else(|| {
                                panic!("{file}: pass {} produced no dump", t.name)
                            });
                            assert!(
                                dump.contains("func "),
                                "{file}: {} dump is not SIR text",
                                t.name
                            );
                        }
                    }
                }
                (Err(pe), Err(de)) => {
                    assert_eq!(
                        pe.to_string(),
                        de.to_string(),
                        "{file}: dumping changed the failure"
                    );
                }
                (p, d) => panic!(
                    "{file}: dumping changed build outcome: plain={:?} dumped={:?}",
                    p.map(|_| ()),
                    d.map(|_| ())
                ),
            }
        }
    }
    stages::clear();
}
