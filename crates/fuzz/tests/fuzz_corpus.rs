//! Replays every persisted corpus entry through the full oracle harness.
//!
//! Corpus entries are minimized programs that once exposed a divergence
//! (`#! kind:` records which). Each underlying bug is fixed before its
//! entry lands, so replay must be clean — a finding here is a regression
//! of a previously-fixed bug. Replay runs twice to pin determinism: the
//! whole differential-testing approach assumes engines are deterministic
//! functions of (program, inputs).

use fuzz::corpus::{default_dir, load_dir};

#[test]
fn corpus_replays_clean_and_deterministically() {
    let entries = match load_dir(&default_dir()) {
        Ok(e) => e,
        Err((file, err)) => panic!("corpus entry {file} is malformed: {err}"),
    };
    assert!(
        !entries.is_empty(),
        "corpus directory {} has no entries",
        default_dir().display()
    );
    for (file, entry) in &entries {
        let w = entry.workload(file);
        let first = fuzz::oracle::check_workload(&w);
        assert!(
            first.is_empty(),
            "{file} (recorded kind {:?}) regressed: {:?}",
            entry.kind.map(|k| k.name()),
            first.iter().map(|f| &f.detail).collect::<Vec<_>>()
        );
        let second = fuzz::oracle::check_workload(&w);
        assert_eq!(
            first.len(),
            second.len(),
            "{file}: replay is not deterministic"
        );
    }
    bitspec::stages::clear();
}

#[test]
fn corpus_files_roundtrip_through_the_text_format() {
    let entries = load_dir(&default_dir()).expect("corpus loads");
    for (file, entry) in &entries {
        let text = entry.to_text();
        let back = fuzz::corpus::Entry::from_text(&text)
            .unwrap_or_else(|e| panic!("{file}: re-parse failed: {e}"));
        assert_eq!(
            back.to_text(),
            text,
            "{file}: to_text∘from_text not a fixpoint"
        );
    }
}
