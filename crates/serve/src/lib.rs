//! # serve — the `bitspecd` batch compile-and-simulate layer
//!
//! ROADMAP item 1's front-end: accept batches of build/sim/experiment
//! requests, dedupe identical cells across requests, shard the unique
//! cells across `bitspec::pool` workers, and stream one JSONL result
//! line per request with hit/miss provenance (memory / disk / computed).
//! Artifact lookups go memory → persistent store → compute via
//! [`bench::run_cached_traced`], so a warmed store turns a whole batch
//! into disk reads.
//!
//! ## Request protocol
//!
//! Line-oriented text; `#` starts a comment. Each line is a verb plus
//! `key=value` pairs:
//!
//! ```text
//! build crc32 config=bitspec
//! sim sha config=bitspec-min gate=0
//! experiment suite
//! ```
//!
//! * `build` — compile the workload, report build facts.
//! * `sim` — compile and simulate, report cycles and energy too (cells
//!   always carry both; the verb picks the fields emitted).
//! * `experiment suite` — expand to the full 112-cell evaluation matrix
//!   (every MiBench workload × [`bench::suite_configs`]).
//!
//! Config bases: `baseline`, `bitspec` (default), `bitspec-avg`,
//! `bitspec-min`, `nospec`, `compact`. Overrides: `gate=0|1`,
//! `verify=0|1`, `dts=0|1`, `compare_elim=0|1`, `bitmask=0|1`,
//! `unroll=N`.

use bench::{run_cached_traced, suite_configs, CellSource};
use bitspec::fingerprint::cell_key;
use bitspec::fingerprint::Fnv;
use bitspec::{pool, Arch, BitwidthHeuristic, BuildConfig, Workload};
use std::collections::HashMap;
use std::sync::Mutex;

/// What a request asks for (cells always hold build + sim; the op picks
/// the fields the result line carries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    Build,
    Sim,
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Position in the batch (result lines echo it).
    pub id: usize,
    pub op: Op,
    pub workload: Workload,
    pub cfg: BuildConfig,
    /// Human-readable config label echoed in the result line.
    pub label: String,
}

/// A request-line parse failure (line number + message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "request line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn base_config(name: &str) -> Option<(BuildConfig, &'static str)> {
    Some(match name {
        "baseline" => (BuildConfig::baseline(), "baseline"),
        "bitspec" => (BuildConfig::bitspec(), "bitspec"),
        "bitspec-avg" => (
            BuildConfig::bitspec_with(BitwidthHeuristic::Avg),
            "bitspec-avg",
        ),
        "bitspec-min" => (
            BuildConfig::bitspec_with(BitwidthHeuristic::Min),
            "bitspec-min",
        ),
        "nospec" => (
            BuildConfig {
                arch: Arch::NoSpec,
                ..BuildConfig::bitspec()
            },
            "nospec",
        ),
        "compact" => (
            BuildConfig {
                arch: Arch::Compact,
                ..BuildConfig::baseline()
            },
            "compact",
        ),
        _ => return None,
    })
}

fn parse_flag(v: &str) -> Option<bool> {
    match v {
        "0" | "false" | "off" => Some(false),
        "1" | "true" | "on" => Some(true),
        _ => None,
    }
}

/// Stable labels for the [`bench::suite_configs`] matrix, in order.
pub fn suite_labels() -> Vec<&'static str> {
    vec![
        "baseline",
        "bitspec",
        "t2-max",
        "t2-avg",
        "t2-min",
        "no-compare-elim",
        "no-bitmask",
        "nospec",
    ]
}

/// The full 112-cell evaluation suite as a request batch (every MiBench
/// workload under every [`bench::suite_configs`] config, op = sim),
/// ids assigned from `first_id`.
pub fn suite_requests(first_id: usize) -> Vec<Request> {
    let cfgs = suite_configs();
    let labels = suite_labels();
    assert_eq!(cfgs.len(), labels.len(), "suite labels out of sync");
    let mut reqs = Vec::new();
    for name in mibench::names() {
        let w = mibench::workload(name, mibench::Input::Large);
        for (cfg, label) in cfgs.iter().zip(&labels) {
            reqs.push(Request {
                id: first_id + reqs.len(),
                op: Op::Sim,
                workload: w.clone(),
                cfg: cfg.clone(),
                label: (*label).to_string(),
            });
        }
    }
    reqs
}

/// Parses a whole request text (one request — or `experiment`
/// expansion — per line) into a batch.
///
/// # Errors
/// Returns the first offending line.
pub fn parse_requests(text: &str) -> Result<Vec<Request>, ParseError> {
    let mut reqs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let verb = parts.next().expect("non-empty line");
        let err = |msg: String| ParseError { line: lineno, msg };
        match verb {
            "build" | "sim" => {
                let name = parts
                    .next()
                    .ok_or_else(|| err(format!("`{verb}` needs a workload name")))?;
                if !mibench::names().contains(&name) {
                    return Err(err(format!("unknown workload `{name}`")));
                }
                let mut cfg = BuildConfig::bitspec();
                let mut label = String::from("bitspec");
                for kv in parts {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| err(format!("expected key=value, got `{kv}`")))?;
                    match k {
                        "config" => {
                            let (c, l) = base_config(v)
                                .ok_or_else(|| err(format!("unknown config `{v}`")))?;
                            cfg = c;
                            label = l.to_string();
                        }
                        "gate" => {
                            cfg.empirical_gate = parse_flag(v)
                                .ok_or_else(|| err(format!("bad flag value `{v}`")))?;
                        }
                        "verify" => {
                            cfg.verify_each = parse_flag(v)
                                .ok_or_else(|| err(format!("bad flag value `{v}`")))?;
                        }
                        "dts" => {
                            cfg.dts = parse_flag(v)
                                .ok_or_else(|| err(format!("bad flag value `{v}`")))?;
                        }
                        "compare_elim" => {
                            cfg.compare_elim = parse_flag(v)
                                .ok_or_else(|| err(format!("bad flag value `{v}`")))?;
                        }
                        "bitmask" => {
                            cfg.bitmask_elision = parse_flag(v)
                                .ok_or_else(|| err(format!("bad flag value `{v}`")))?;
                        }
                        "unroll" => {
                            cfg.expander.unroll_factor = v
                                .parse()
                                .ok()
                                .filter(|&n| n >= 1)
                                .ok_or_else(|| err(format!("bad unroll factor `{v}`")))?;
                        }
                        _ => return Err(err(format!("unknown key `{k}`"))),
                    }
                }
                reqs.push(Request {
                    id: reqs.len(),
                    op: if verb == "build" { Op::Build } else { Op::Sim },
                    workload: mibench::workload(name, mibench::Input::Large),
                    cfg,
                    label,
                });
            }
            "experiment" => {
                let name = parts
                    .next()
                    .ok_or_else(|| err("`experiment` needs a name".to_string()))?;
                match name {
                    "suite" => reqs.extend(suite_requests(reqs.len())),
                    _ => return Err(err(format!("unknown experiment `{name}`"))),
                }
            }
            _ => return Err(err(format!("unknown verb `{verb}`"))),
        }
    }
    Ok(reqs)
}

/// Batch statistics: request/cell counts by provenance plus the combined
/// suite fingerprint (FNV-1a over each unique cell's `(cell key, program
/// fingerprint, outputs, cycles)` in first-occurrence order — two runs
/// covering the same cells producing the same `suite_fp` produced
/// bit-identical artifacts and results, however the cells were served).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    pub requests: usize,
    /// Unique cells after dedupe.
    pub cells: usize,
    /// Requests that shared another request's cell.
    pub deduped: usize,
    pub memory_hits: usize,
    pub disk_hits: usize,
    pub computed: usize,
    pub suite_fp: u64,
}

/// FNV over a sim output stream.
fn outputs_fnv(outputs: &[u32]) -> u64 {
    let mut h = Fnv::new();
    for o in outputs {
        h.u32(*o);
    }
    h.finish()
}

/// Serves one batch: dedupes identical cells across requests (first
/// occurrence wins, later ones are flagged `dedup`), fans the unique
/// cells across `jobs` pool workers, and emits one JSONL line per
/// request through `emit`. With `ordered` the lines come out in request
/// order after the batch completes; without it each cell's lines stream
/// as soon as that cell finishes (order then depends on scheduling, the
/// *content* of every line does not). Returns the batch statistics;
/// wall-clock is the caller's to measure.
pub fn serve_batch(
    reqs: &[Request],
    jobs: usize,
    ordered: bool,
    emit: &(dyn Fn(&str) + Sync),
) -> ServeStats {
    // Dedupe on the structural cell key, preserving first-occurrence
    // order so the work list is deterministic.
    let mut index_of: HashMap<u64, usize> = HashMap::new();
    let mut uniques: Vec<&Request> = Vec::new();
    let mut req_cell: Vec<(u64, usize, bool)> = Vec::new(); // (key, unique idx, dedup)
    for r in reqs {
        let key = cell_key(&r.workload, &r.cfg);
        match index_of.get(&key) {
            Some(&ui) => req_cell.push((key, ui, true)),
            None => {
                let ui = uniques.len();
                index_of.insert(key, ui);
                uniques.push(r);
                req_cell.push((key, ui, false));
            }
        }
    }

    // Requests served by each unique cell, for streaming emission.
    let mut served_by: Vec<Vec<usize>> = vec![Vec::new(); uniques.len()];
    for (ri, (_, ui, _)) in req_cell.iter().enumerate() {
        served_by[*ui].push(ri);
    }

    let emit_line = |ri: usize, cell: &bench::Cell, source: CellSource| {
        let r = &reqs[ri];
        let (key, _, dedup) = req_cell[ri];
        let (c, sim) = (&cell.0, &cell.1);
        let build_fp = backend::program_fingerprint(&c.program);
        let mut line = format!(
            "{{\"id\": {}, \"op\": \"{}\", \"workload\": \"{}\", \"config\": \"{}\", \
             \"key\": \"{key:016x}\", \"source\": \"{}\", \"dedup\": {dedup}, \
             \"build_fp\": \"{build_fp:016x}\", \"used_squeezed\": {}",
            r.id,
            match r.op {
                Op::Build => "build",
                Op::Sim => "sim",
            },
            r.workload.name,
            r.label,
            source.label(),
            c.used_squeezed,
        );
        if r.op == Op::Sim {
            line.push_str(&format!(
                ", \"outputs_fnv\": \"{:016x}\", \"cycles\": {}, \"energy_pj\": {:.4}",
                outputs_fnv(&sim.outputs),
                sim.cycles,
                sim.total_energy(),
            ));
        }
        line.push('}');
        emit(&line);
    };

    let emit_mutex = Mutex::new(());
    let results: Vec<(bench::Cell, CellSource)> = pool::run_ordered(uniques.len(), jobs, |ui| {
        let r = uniques[ui];
        let (cell, source) = run_cached_traced(&r.workload, &r.cfg);
        if !ordered {
            // Stream: this cell is done, emit every request it serves.
            let _g = emit_mutex.lock().expect("emit lock");
            for &ri in &served_by[ui] {
                emit_line(ri, &cell, source);
            }
        }
        (cell, source)
    });

    if ordered {
        for (ri, &(_, ui, _)) in req_cell.iter().enumerate() {
            emit_line(ri, &results[ui].0, results[ui].1);
        }
    }

    // Combined fingerprint over the unique cells in first-occurrence
    // order: any difference in keys, compiled programs or observable
    // results changes it. Hashing uniques (not raw requests) keeps the
    // fingerprint comparable between a batch and its deduped repeat.
    let mut h = Fnv::new();
    for (ui, r) in uniques.iter().enumerate() {
        let (cell, _) = &results[ui];
        h.u64(cell_key(&r.workload, &r.cfg));
        h.u64(backend::program_fingerprint(&cell.0.program));
        h.u64(outputs_fnv(&cell.1.outputs));
        h.u64(cell.1.cycles);
    }

    let mut stats = ServeStats {
        requests: reqs.len(),
        cells: uniques.len(),
        deduped: reqs.len() - uniques.len(),
        memory_hits: 0,
        disk_hits: 0,
        computed: 0,
        suite_fp: h.finish(),
    };
    for (_, source) in &results {
        match source {
            CellSource::Memory => stats.memory_hits += 1,
            CellSource::Disk => stats.disk_hits += 1,
            CellSource::Computed => stats.computed += 1,
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_requests() {
        let reqs = parse_requests(
            "# comment\n\
             build crc32 config=baseline\n\
             sim sha config=bitspec-min gate=0\n",
        )
        .unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].op, Op::Build);
        assert_eq!(reqs[0].label, "baseline");
        assert_eq!(reqs[1].op, Op::Sim);
        assert!(!reqs[1].cfg.empirical_gate);
        assert_eq!(reqs[1].cfg.heuristic, BitwidthHeuristic::Min);
    }

    #[test]
    fn parse_rejects_unknowns() {
        assert!(parse_requests("frobnicate crc32").is_err());
        assert!(parse_requests("build nonesuch").is_err());
        assert!(parse_requests("build crc32 config=warp").is_err());
        assert!(parse_requests("build crc32 gate=maybe").is_err());
        assert!(parse_requests("experiment nonesuch").is_err());
    }

    #[test]
    fn suite_expands_to_full_matrix() {
        let reqs = parse_requests("experiment suite").unwrap();
        assert_eq!(reqs.len(), mibench::names().len() * suite_configs().len());
        // Ids are the batch positions.
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, i);
        }
    }

    #[test]
    fn dedupe_collapses_identical_cells() {
        let text = "sim crc32 config=baseline\nsim crc32 config=baseline\n";
        let reqs = parse_requests(text).unwrap();
        let lines = Mutex::new(Vec::new());
        let stats = serve_batch(&reqs, 1, true, &|l| {
            lines.lock().unwrap().push(l.to_string());
        });
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.cells, 1);
        assert_eq!(stats.deduped, 1);
        let lines = lines.into_inner().unwrap();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"dedup\": false"));
        assert!(lines[1].contains("\"dedup\": true"));
        // Same cell, same fingerprints on both lines.
        let fp = |l: &str| {
            l.split("\"build_fp\": \"")
                .nth(1)
                .unwrap()
                .chars()
                .take(16)
                .collect::<String>()
        };
        assert_eq!(fp(&lines[0]), fp(&lines[1]));
    }
}
