//! `bitspecd` — the batch compile-and-simulate request runner.
//!
//! Reads a request batch (stdin or `--file`), serves it through the
//! three-tier cache (memory → persistent store → compute) and streams
//! one JSONL result line per request with hit/miss provenance. See the
//! `serve` crate docs for the request protocol.
//!
//! ```text
//! bitspecd [--store DIR] [--store-cap BYTES[k|m|g]] [-j N] [--ordered]
//!          [--file REQUESTS]
//! bitspecd --bench [--reps N] [-j N]       # writes BENCH_serve.json
//! ```
//!
//! `--bench` measures the store's payoff on the 112-cell evaluation
//! suite: a cold sweep into a fresh store, an in-process re-sweep with
//! every request duplicated (memory hits + dedupe), and a *separate
//! child process* re-sweeping the same store (disk hits only — the
//! cross-process number ROADMAP targets at ≥10x), asserting the child's
//! combined artifact fingerprint matches the cold sweep bit for bit.

use serve::{parse_requests, serve_batch, suite_requests, ServeStats};
use std::io::Read;
use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

struct Args {
    store: Option<PathBuf>,
    store_cap: Option<u64>,
    jobs: usize,
    codegen_jobs: Option<usize>,
    ordered: bool,
    file: Option<PathBuf>,
    bench: bool,
    bench_child: bool,
    reps: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: bitspecd [--store DIR] [--store-cap BYTES[k|m|g]] [-j N] \
         [--codegen-jobs N] [--ordered] [--file REQUESTS]\n       \
         bitspecd --bench [--reps N] [-j N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut a = Args {
        store: None,
        store_cap: None,
        jobs: bitspec::pool::jobs_for(&argv),
        codegen_jobs: None,
        ordered: false,
        file: None,
        bench: false,
        bench_child: false,
        reps: 3,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => a.store = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--store-cap" => {
                let v = it.next().unwrap_or_else(|| usage());
                match bitspec::store::parse_cap(v) {
                    Some(cap) => a.store_cap = Some(cap),
                    None => {
                        eprintln!("bitspecd: bad --store-cap value `{v}`");
                        std::process::exit(2);
                    }
                }
            }
            "--codegen-jobs" => {
                a.codegen_jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .or_else(|| usage());
            }
            "--ordered" => a.ordered = true,
            "--file" => a.file = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--bench" => a.bench = true,
            "--bench-child" => a.bench_child = true,
            "--reps" => {
                a.reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "-j" | "--jobs" => {
                it.next();
            }
            s if s.starts_with("-j") && s[2..].parse::<usize>().is_ok() => {}
            "--help" | "-h" => usage(),
            other => {
                eprintln!("bitspecd: unknown argument `{other}`");
                usage();
            }
        }
    }
    a
}

fn print_summary(stats: &ServeStats, wall: f64) {
    println!(
        "{{\"summary\": {{\"requests\": {}, \"cells\": {}, \"deduped\": {}, \
         \"memory_hits\": {}, \"disk_hits\": {}, \"computed\": {}, \"wall_s\": {wall:.6}, \
         \"throughput_rps\": {:.2}, \"suite_fp\": \"{:016x}\"}}}}",
        stats.requests,
        stats.cells,
        stats.deduped,
        stats.memory_hits,
        stats.disk_hits,
        stats.computed,
        if wall > 0.0 {
            stats.requests as f64 / wall
        } else {
            0.0
        },
        stats.suite_fp,
    );
}

/// Serve mode: parse a batch from `--file`/stdin and stream results.
fn serve_mode(a: &Args) {
    let text = match &a.file {
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bitspecd: cannot read {}: {e}", path.display());
            std::process::exit(2);
        }),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| {
                    eprintln!("bitspecd: cannot read stdin: {e}");
                    std::process::exit(2);
                });
            buf
        }
    };
    let reqs = match parse_requests(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bitspecd: {e}");
            std::process::exit(2);
        }
    };
    let t = Instant::now();
    let stats = serve_batch(&reqs, a.jobs, a.ordered, &|line| println!("{line}"));
    print_summary(&stats, t.elapsed().as_secs_f64());
}

/// Child leg of `--bench`: a fresh process whose memory caches are
/// necessarily cold, re-sweeping the parent's store. Prints one
/// parseable summary line.
fn bench_child_mode(a: &Args) {
    let reqs = suite_requests(0);
    let t = Instant::now();
    let stats = serve_batch(&reqs, a.jobs, false, &|_| {});
    let wall = t.elapsed().as_secs_f64();
    println!(
        "BENCH_CHILD wall_s={wall:.6} cells={} memory_hits={} disk_hits={} computed={} \
         suite_fp={:016x}",
        stats.cells, stats.memory_hits, stats.disk_hits, stats.computed, stats.suite_fp
    );
}

struct ChildRun {
    wall_s: f64,
    disk_hits: usize,
    computed: usize,
    suite_fp: u64,
}

fn parse_child(output: &str) -> Option<ChildRun> {
    let line = output.lines().find(|l| l.starts_with("BENCH_CHILD "))?;
    let mut run = ChildRun {
        wall_s: f64::NAN,
        disk_hits: usize::MAX,
        computed: usize::MAX,
        suite_fp: 0,
    };
    for kv in line.split_whitespace().skip(1) {
        let (k, v) = kv.split_once('=')?;
        match k {
            "wall_s" => run.wall_s = v.parse().ok()?,
            "disk_hits" => run.disk_hits = v.parse().ok()?,
            "computed" => run.computed = v.parse().ok()?,
            "suite_fp" => run.suite_fp = u64::from_str_radix(v, 16).ok()?,
            _ => {}
        }
    }
    if run.wall_s.is_nan() || run.disk_hits == usize::MAX || run.computed == usize::MAX {
        return None;
    }
    Some(run)
}

/// `--bench`: measure cold / memory-warm / cross-process disk-warm
/// sweeps of the 112-cell suite and write BENCH_serve.json.
fn bench_mode(a: &Args) {
    let store_dir = std::env::temp_dir().join(format!("bitspecd-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    bitspec::store::configure(Some(&store_dir), None);
    println!(
        "== bitspecd bench: 112-cell suite, store at {} (j={})",
        store_dir.display(),
        a.jobs
    );

    // Leg 1: cold — empty store, empty memory caches. Every cell is
    // computed and published.
    let reqs = suite_requests(0);
    let t = Instant::now();
    let cold = serve_batch(&reqs, a.jobs, false, &|_| {});
    let cold_wall = t.elapsed().as_secs_f64();
    assert_eq!(cold.computed, cold.cells, "cold sweep must compute all");
    println!(
        "cold: {} cells computed in {cold_wall:.3}s ({:.1} req/s)",
        cold.cells,
        cold.requests as f64 / cold_wall
    );

    // Leg 2: memory-warm, with every request duplicated — 2N requests
    // collapse onto N cells (dedupe) and all N are memory hits.
    let mut doubled = suite_requests(0);
    doubled.extend(suite_requests(doubled.len()));
    let t = Instant::now();
    let warm = serve_batch(&doubled, a.jobs, false, &|_| {});
    let warm_wall = t.elapsed().as_secs_f64();
    assert_eq!(warm.memory_hits, warm.cells, "re-sweep must hit memory");
    assert_eq!(warm.deduped, warm.cells, "doubled batch must dedupe");
    assert_eq!(warm.suite_fp, cold.suite_fp, "memory-warm artifacts differ");
    println!(
        "memory-warm: {} requests → {} cells ({} deduped) in {warm_wall:.3}s \
         ({:.0} req/s)",
        warm.requests,
        warm.cells,
        warm.deduped,
        warm.requests as f64 / warm_wall
    );

    // Leg 3: cross-process disk-warm — a child process (cold memory)
    // re-sweeps the store; min over reps. This is the ROADMAP ≥10x leg.
    let exe = std::env::current_exe().expect("own path");
    let mut best: Option<ChildRun> = None;
    for rep in 0..a.reps {
        let out = Command::new(&exe)
            .args([
                "--bench-child",
                "--store",
                store_dir.to_str().expect("utf-8 temp path"),
                "-j",
                &a.jobs.to_string(),
            ])
            .output()
            .expect("spawn bench child");
        let stdout = String::from_utf8_lossy(&out.stdout);
        let run = parse_child(&stdout).unwrap_or_else(|| {
            panic!(
                "bench child produced no summary (rep {rep}):\n{}{}",
                stdout,
                String::from_utf8_lossy(&out.stderr)
            )
        });
        assert_eq!(
            run.suite_fp, cold.suite_fp,
            "disk-warm artifacts are not bit-identical to the cold build"
        );
        assert_eq!(run.computed, 0, "disk-warm sweep recomputed cells");
        if best.as_ref().is_none_or(|b| run.wall_s < b.wall_s) {
            best = Some(run);
        }
    }
    let child = best.expect("at least one rep");
    let speedup = cold_wall / child.wall_s;
    println!(
        "disk-warm (cross-process, min of {}): {} disk hits in {:.3}s \
         ({:.0} req/s) — {speedup:.1}x vs cold",
        a.reps,
        child.disk_hits,
        child.wall_s,
        cold.requests as f64 / child.wall_s
    );

    let json = format!(
        "{{\n  \"suite\": {{\"cells\": {}, \"workloads\": {}, \"configs\": {}}},\n  \
         \"jobs\": {},\n  \"reps\": {},\n  \
         \"cold\": {{\"requests\": {}, \"computed\": {}, \"wall_s\": {cold_wall:.6}, \
         \"throughput_rps\": {:.2}}},\n  \
         \"memory_warm\": {{\"requests\": {}, \"cells\": {}, \"deduped\": {}, \
         \"memory_hits\": {}, \"wall_s\": {warm_wall:.6}, \"throughput_rps\": {:.2}}},\n  \
         \"disk_warm_cross_process\": {{\"requests\": {}, \"disk_hits\": {}, \
         \"computed\": {}, \"wall_s\": {:.6}, \"throughput_rps\": {:.2}}},\n  \
         \"resweep_speedup\": {speedup:.2},\n  \
         \"bit_identical\": true,\n  \"suite_fp\": \"{:016x}\"\n}}\n",
        cold.cells,
        mibench::names().len(),
        bench::suite_configs().len(),
        a.jobs,
        a.reps,
        cold.requests,
        cold.computed,
        cold.requests as f64 / cold_wall,
        warm.requests,
        warm.cells,
        warm.deduped,
        warm.memory_hits,
        warm.requests as f64 / warm_wall,
        cold.requests,
        child.disk_hits,
        child.computed,
        child.wall_s,
        cold.requests as f64 / child.wall_s,
        cold.suite_fp,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
    let _ = std::fs::remove_dir_all(&store_dir);

    assert!(
        speedup >= 10.0,
        "cross-process disk-warm re-sweep is only {speedup:.1}x vs cold (target ≥10x)"
    );
}

fn main() {
    let a = parse_args();
    // --store/--store-cap override the BITSPEC_STORE_DIR /
    // BITSPEC_STORE_MAX_BYTES environment for this process.
    if let Some(dir) = &a.store {
        bitspec::store::configure(Some(dir), a.store_cap);
    }
    // `-j` fans requests across pool workers; `--codegen-jobs` further
    // fans each miss's backend across per-function codegen workers
    // (useful for few-request batches of large modules). Both settings
    // leave served artifacts bit-identical.
    if let Some(n) = a.codegen_jobs {
        bitspec::stages::set_codegen_workers(n);
    }
    if a.bench_child {
        bench_child_mode(&a);
    } else if a.bench {
        bench_mode(&a);
    } else {
        serve_mode(&a);
    }
}
