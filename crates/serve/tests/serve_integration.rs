//! Serve-layer integration: the cell-level cache tiers under
//! [`bench::run_cached_traced`], corrupt cell entries falling back to
//! compute, and real `bitspecd` child processes — concurrent children
//! racing one store, and fresh-store children agreeing bit-for-bit.
//!
//! The store configuration, cell cache and stage caches are all
//! process-global, so the in-process tests take a file-wide lock and
//! use tag-unique sources. The child-process tests are independent of
//! this process's globals but still serialize to keep wall-clock sane.

use bench::{clear_cache, run_cached_traced, CellSource};
use bitspec::{stages, store, BuildConfig, Workload};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::{Mutex, MutexGuard, OnceLock};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn unique_workload(tag: &str) -> Workload {
    let src = format!(
        "global u8 seed[2]; // serve {tag}
         void main() {{
            u32 s = 1;
            for (u32 i = 0; i < 40; i++) {{ s = (s + seed[i & 1]) * 3 & 255; }}
            out(s);
         }}"
    );
    Workload::from_source(format!("serve_{tag}"), src)
        .with_input("seed", vec![3, 9])
        .with_train_input("seed", vec![5, 2])
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("bitspec-serve-it-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        store::configure(None, None);
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Wipes the in-process caches (bench cell cache + stage caches) while
/// leaving any configured disk store untouched.
fn wipe_memory() {
    clear_cache();
    stages::clear();
}

#[test]
fn cell_cache_walks_memory_then_disk_then_compute() {
    let _g = serial();
    let scratch = Scratch::new("tiers");
    store::configure(Some(scratch.path()), None);
    wipe_memory();
    let w = unique_workload("tiers");
    let cfg = BuildConfig::bitspec();

    let (cold, src) = run_cached_traced(&w, &cfg);
    assert_eq!(src, CellSource::Computed);
    let (mem, src) = run_cached_traced(&w, &cfg);
    assert_eq!(src, CellSource::Memory);
    assert!(std::sync::Arc::ptr_eq(&cold, &mem), "memory tier shares");

    wipe_memory();
    let (disk, src) = run_cached_traced(&w, &cfg);
    assert_eq!(src, CellSource::Disk, "fresh memory must fall to disk");
    assert_eq!(disk.1.outputs, cold.1.outputs);
    assert_eq!(disk.1.cycles, cold.1.cycles);
    assert_eq!(
        backend::program_fingerprint(&disk.0.program),
        backend::program_fingerprint(&cold.0.program)
    );
    // And the disk hit re-seeded memory.
    let (_, src) = run_cached_traced(&w, &cfg);
    assert_eq!(src, CellSource::Memory);
}

#[test]
fn corrupt_cell_entry_falls_back_to_compute_and_rewrites() {
    let _g = serial();
    let scratch = Scratch::new("corrupt");
    store::configure(Some(scratch.path()), None);
    wipe_memory();
    let w = unique_workload("corrupt");
    let cfg = BuildConfig::bitspec();
    let (cold, _) = run_cached_traced(&w, &cfg);

    // Stomp every cell entry's payload.
    let cell_dir = scratch.path().join("cell");
    let mut stomped = 0;
    for f in fs::read_dir(&cell_dir).unwrap().flatten() {
        let mut bytes = fs::read(f.path()).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(f.path(), &bytes).unwrap();
        stomped += 1;
    }
    assert!(stomped > 0);

    wipe_memory();
    let before = store::stats();
    let (again, src) = run_cached_traced(&w, &cfg);
    assert_eq!(src, CellSource::Computed, "corrupt entry must not serve");
    assert!(store::stats().corrupt > before.corrupt);
    assert_eq!(again.1.outputs, cold.1.outputs);

    // The recompute republished a clean entry.
    wipe_memory();
    let (_, src) = run_cached_traced(&w, &cfg);
    assert_eq!(src, CellSource::Disk, "fallback must rewrite the entry");
}

/// A small build+sim request batch over cheap MiBench workloads —
/// child processes run debug binaries, so keep the matrix tiny.
const BATCH: &str = "\
sim crc32 config=bitspec
sim crc32 config=baseline
sim basicmath config=bitspec
sim basicmath config=nospec gate=off
";

fn run_child(store_dir: &Path, batch_file: &Path) -> (String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bitspecd"))
        .arg("--store")
        .arg(store_dir)
        .arg("--ordered")
        .arg("--file")
        .arg(batch_file)
        .output()
        .expect("spawn bitspecd");
    assert!(
        out.status.success(),
        "bitspecd failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    let summary = stdout
        .lines()
        .rev()
        .find(|l| l.contains("\"summary\""))
        .expect("summary line")
        .to_string();
    (stdout, summary)
}

fn suite_fp_of(summary: &str) -> &str {
    let key = "\"suite_fp\": \"";
    let start = summary.find(key).expect("suite_fp field") + key.len();
    &summary[start..start + 16]
}

/// Strips fields that legitimately differ between runs (cache
/// provenance and wall-clock) so the rest must match byte-for-byte.
fn normalize(stdout: &str) -> String {
    stdout
        .lines()
        .filter(|l| !l.contains("\"summary\""))
        .map(|l| {
            let mut s = l.to_string();
            for tier in ["memory", "disk", "computed"] {
                s = s.replace(&format!("\"source\": \"{tier}\", "), "\"source\": \"-\", ");
            }
            s
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn concurrent_children_race_one_store_and_agree() {
    let _g = serial();
    let scratch = Scratch::new("children-race");
    let store_dir = scratch.path().join("store");
    let batch = scratch.path().join("batch.txt");
    fs::create_dir_all(scratch.path()).unwrap();
    fs::write(&batch, BATCH).unwrap();

    // Two processes race cold against one store: both publish every
    // cell, both must succeed and agree on the suite fingerprint.
    let a = {
        let (d, b) = (store_dir.clone(), batch.clone());
        std::thread::spawn(move || run_child(&d, &b))
    };
    let b = run_child(&store_dir, &batch);
    let a = a.join().unwrap();
    assert_eq!(suite_fp_of(&a.1), suite_fp_of(&b.1));
    assert_eq!(normalize(&a.0), normalize(&b.0));

    // A third, cold process re-sweeps the racers' store purely from
    // disk — no compute — and still matches.
    let c = run_child(&store_dir, &batch);
    assert!(
        c.1.contains("\"computed\": 0"),
        "warm child recomputed: {}",
        c.1
    );
    assert_eq!(suite_fp_of(&c.1), suite_fp_of(&a.1));
    assert_eq!(normalize(&c.0), normalize(&a.0));
}

#[test]
fn fresh_store_children_are_bit_identical() {
    let _g = serial();
    let scratch = Scratch::new("children-fresh");
    let batch = scratch.path().join("batch.txt");
    fs::create_dir_all(scratch.path()).unwrap();
    fs::write(&batch, BATCH).unwrap();

    // Two children with separate empty stores: everything computed in
    // both, and the artifacts (fingerprints, outputs, cycles, energy —
    // the full result stream) must be bit-identical across processes.
    let a = run_child(&scratch.path().join("store-a"), &batch);
    let b = run_child(&scratch.path().join("store-b"), &batch);
    assert!(a.1.contains("\"disk_hits\": 0"));
    assert!(b.1.contains("\"disk_hits\": 0"));
    assert_eq!(suite_fp_of(&a.1), suite_fp_of(&b.1));
    assert_eq!(a.0.replace(&a.1, ""), b.0.replace(&b.1, ""));
}
