//! # mibench — the benchmark suite of the evaluation (§4.1)
//!
//! Re-implementations of the MiBench workloads the paper evaluates on,
//! written in the mini-C language of the [`lang`] crate with deterministic
//! synthetic inputs (DESIGN.md records this substitution — the original
//! suite ships C sources and input files we reproduce structurally, not
//! byte-for-byte).
//!
//! Every workload keeps the algorithmic skeleton that drives the paper's
//! bitwidth behaviour: table-driven CRC, byte-oriented AES and Blowfish
//! rounds, Boyer–Moore–Horspool skip tables indexed by `size_t` lengths,
//! USAN masks over 8-bit pixels, and so on.
//!
//! Use [`names`] to enumerate the suite and [`workload`] to obtain a
//! [`bitspec::Workload`] ready for `bitspec::build`.

mod programs;
pub mod rng;

pub use programs::{multifn_source, rq7_wide_variant, source_of};

use bitspec::Workload;
use rng::Rng;

/// Which input set to generate (RQ6 input-sensitivity support).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Input {
    /// The default evaluation input (the suite's "large" input).
    Large,
    /// An alternate input from the same generator family (different seed
    /// and size mix) — used to profile in the RQ6 sensitivity study.
    Alternate,
    /// A seeded custom input (Figure 16's cross-input matrix).
    Seeded(u64),
}

impl Input {
    fn seed(self) -> u64 {
        match self {
            Input::Large => 0x5EED_0001,
            Input::Alternate => 0xA17E_0002,
            Input::Seeded(s) => 0x1000_0000 ^ s,
        }
    }
}

/// The benchmark names, in the paper's figure order.
pub fn names() -> Vec<&'static str> {
    vec![
        "crc32",
        "fft",
        "basicmath",
        "bitcount",
        "blowfish",
        "dijkstra",
        "patricia",
        "qsort",
        "rijndael",
        "sha",
        "stringsearch",
        "susan-edges",
        "susan-corners",
        "susan-smoothing",
    ]
}

/// Builds the workload for `name` with evaluation inputs from `input`.
/// The training input defaults to the evaluation input (profile == run),
/// matching the paper's primary methodology; RQ6 overrides it.
///
/// # Panics
/// Panics on an unknown benchmark name.
pub fn workload(name: &str, input: Input) -> Workload {
    let mut w = Workload::from_source(name, source_of(name));
    for (g, data) in inputs_for(name, input) {
        w = w.with_input(g, data);
    }
    w
}

/// Like [`workload`], profiling on `train` and evaluating on `eval` (RQ6).
///
/// # Panics
/// Panics on an unknown benchmark name.
pub fn workload_with_train(name: &str, eval: Input, train: Input) -> Workload {
    let mut w = workload(name, eval);
    for (g, data) in inputs_for(name, train) {
        w = w.with_train_input(g, data);
    }
    w
}

/// Synthetic `k`-function workload for the function-granular codegen
/// cache studies (not part of the paper's suite). `edit` perturbs only
/// `f0`'s round constant, modelling a one-function source edit; see
/// [`multifn_source`]. Build it with the expander disabled to keep the
/// functions as separate backend compilation units.
pub fn multifn(k: usize, edit: u32) -> Workload {
    let data: Vec<u8> = (0..64u32).map(|i| (i * 37 + 11) as u8).collect();
    Workload::from_source("multifn", multifn_source(k, edit)).with_input("input", data)
}

/// Input data per benchmark. Global names match the benchmark sources.
pub fn inputs_for(name: &str, input: Input) -> Vec<(String, Vec<u8>)> {
    let mut rng = Rng::new(input.seed());
    let alt = input != Input::Large;
    match name {
        "crc32" => {
            // Newline-separated text; line lengths mostly < 255 with a few
            // long outliers (the paper: 0–2729, mean 145.8).
            let mut data = Vec::new();
            let lines = if alt { 36 } else { 44 };
            for i in 0..lines {
                let len = if i % 13 == 7 {
                    300 + rng.range(0, 200) // outlier: needs > 8 bits
                } else {
                    rng.range(5, 150)
                };
                for _ in 0..len {
                    data.push(rng.range(u64::from(b' '), u64::from(b'z') + 1) as u8);
                }
                data.push(b'\n');
            }
            data.push(0);
            data.truncate(8191);
            vec![("input".into(), data)]
        }
        "fft" => {
            let n = 64usize;
            let mut data = Vec::new();
            for i in 0..n {
                let v: i16 = (((i as f64) * 0.49).sin() * if alt { 700.0 } else { 1000.0 }) as i16
                    + rng.range_i64(-64, 64) as i16;
                data.extend_from_slice(&v.to_le_bytes());
            }
            vec![("wave".into(), data)]
        }
        "basicmath" => {
            let mut data = Vec::new();
            for _ in 0..96 {
                let v: u32 = if alt {
                    rng.range(0, 40_000) as u32
                } else {
                    rng.range(0, 60_000) as u32
                };
                data.extend_from_slice(&v.to_le_bytes());
            }
            vec![("nums".into(), data)]
        }
        "bitcount" => {
            let mut data = Vec::new();
            for i in 0..256u32 {
                // Mostly-small values: the paper's bitcount input skews low.
                let v: u32 = if i % 11 == 3 {
                    rng.next_u32()
                } else {
                    rng.range(0, 4096) as u32
                };
                data.extend_from_slice(&v.to_le_bytes());
            }
            vec![("words".into(), data)]
        }
        "blowfish" => {
            let mut key = vec![0u8; 16];
            rng.fill(&mut key[..]);
            let mut data = vec![0u8; 1024];
            rng.fill(&mut data[..]);
            if alt {
                data.truncate(768);
            }
            vec![("key".into(), key), ("plain".into(), data)]
        }
        "dijkstra" => {
            // 32×32 adjacency matrix of small edge weights.
            let n = 32usize;
            let mut adj = vec![0u8; n * n];
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        adj[i * n + j] = if rng.chance(if alt { 0.3 } else { 0.4 }) {
                            rng.range(1, 50) as u8
                        } else {
                            200 // "no edge" sentinel-ish large weight
                        };
                    }
                }
            }
            vec![("adj".into(), adj)]
        }
        "patricia" => {
            let mut data = Vec::new();
            for _ in 0..192 {
                let ip: u32 = if alt {
                    rng.next_u32() & 0x0FFF_FFFF
                } else {
                    rng.next_u32()
                };
                data.extend_from_slice(&ip.to_le_bytes());
            }
            vec![("addrs".into(), data)]
        }
        "qsort" => {
            let mut data = Vec::new();
            for _ in 0..600 {
                let v: u32 = if alt {
                    rng.range(0, 100_000) as u32
                } else {
                    rng.next_u32()
                };
                data.extend_from_slice(&v.to_le_bytes());
            }
            vec![("arr".into(), data)]
        }
        "rijndael" => {
            let mut key = vec![0u8; 16];
            rng.fill(&mut key[..]);
            let blocks = if alt { 40 } else { 56 };
            let mut data = vec![0u8; 16 * blocks];
            rng.fill(&mut data[..]);
            vec![("key".into(), key), ("plain".into(), data)]
        }
        "sha" => {
            let len = if alt { 2048 } else { 3072 };
            let mut data = vec![0u8; len];
            rng.fill(&mut data[..]);
            vec![("message".into(), data)]
        }
        "stringsearch" => {
            // Text plus NUL-separated patterns (lengths ≤ 12, text lines
            // ≤ 56, per the paper's Listing 1 commentary).
            let mut text = Vec::new();
            let words = [
                &b"speculation"[..],
                b"bitwidth",
                b"register",
                b"energy",
                b"slice",
                b"handler",
            ];
            for _ in 0..140 {
                if rng.chance(0.18) {
                    text.extend_from_slice(words[rng.range(0, words.len() as u64) as usize]);
                } else {
                    let len = rng.range(2, 10);
                    for _ in 0..len {
                        text.push(rng.range(u64::from(b'a'), u64::from(b'z') + 1) as u8);
                    }
                }
                text.push(b' ');
            }
            text.push(0);
            text.truncate(2047);
            let mut pats = Vec::new();
            let count = if alt { 4 } else { 6 };
            for w in words.iter().take(count) {
                pats.extend_from_slice(w);
                pats.push(0);
            }
            pats.push(0);
            vec![("text".into(), text), ("pats".into(), pats)]
        }
        "susan-edges" | "susan-corners" | "susan-smoothing" => {
            vec![("image".into(), susan_image(input))]
        }
        other => panic!("unknown benchmark `{other}`"),
    }
}

/// Generates a 32×32 grayscale test image. Different seeds produce images
/// with different brightness statistics (Figure 16's image set).
pub fn susan_image(input: Input) -> Vec<u8> {
    let mut rng = Rng::new(input.seed());
    let n = 32usize;
    let mut img = vec![0u8; n * n];
    // Piecewise-flat regions with edges plus noise: what USAN responds to.
    let regions = rng.range(3, 7) as usize;
    let mut levels = vec![0u8; regions];
    for l in &mut levels {
        *l = rng.range(20, 235) as u8;
    }
    for y in 0..n {
        for x in 0..n {
            let r = ((x * regions) / n + (y * regions) / (n * 2)) % regions;
            let noise: i16 = rng.range_i64(-8, 8) as i16;
            img[y * n + x] = (i16::from(levels[r]) + noise).clamp(0, 255) as u8;
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_have_sources_and_inputs() {
        for name in names() {
            let w = workload(name, Input::Large);
            assert!(!w.source.is_empty());
            // Input generation is deterministic.
            let a = inputs_for(name, Input::Large);
            let b = inputs_for(name, Input::Large);
            assert_eq!(a, b, "{name} inputs must be deterministic");
            let alt = inputs_for(name, Input::Alternate);
            if !a.is_empty() {
                assert_ne!(a, alt, "{name} alternate input must differ");
            }
        }
    }

    #[test]
    fn sources_compile() {
        for name in names() {
            lang::compile(name, &source_of(name))
                .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
        }
    }

    #[test]
    fn seeded_images_differ() {
        let a = susan_image(Input::Seeded(1));
        let b = susan_image(Input::Seeded(2));
        assert_ne!(a, b);
        assert_eq!(a.len(), 32 * 32);
    }

    #[test]
    fn rq7_variants_compile() {
        for name in ["dijkstra", "stringsearch"] {
            let src = rq7_wide_variant(name).expect("variant exists");
            lang::compile(name, &src).unwrap_or_else(|e| panic!("{name} wide variant failed: {e}"));
        }
        assert!(rq7_wide_variant("sha").is_none());
    }
}

#[cfg(test)]
mod regression_pins {
    use super::*;
    use bitspec::{build, interpret, BuildConfig};

    /// Pinned reference outputs: any semantic drift in the frontend,
    /// optimizer, interpreter or input generators shows up here first.
    #[test]
    fn benchmark_outputs_are_pinned() {
        let expected: Vec<(&str, Vec<u32>)> = vec![
            ("crc32", vec![335923627, 44, 464]),
            ("fft", vec![88758, 94, 4294967232]),
            ("basicmath", vec![15951, 2, 4538]),
            ("bitcount", vec![1785, 1785, 1785, 1785, 1785]),
            ("blowfish", vec![2172484257]),
            ("dijkstra", vec![5393]),
            ("patricia", vec![128, 255]),
            ("qsort", vec![3496543583, 1]),
            ("rijndael", vec![1612225275, 193]),
            (
                "sha",
                vec![2037308229, 2403765143, 3309849184, 3291684071, 2245319721],
            ),
            ("stringsearch", vec![29, 983]),
            ("susan-edges", vec![19035, 204]),
            ("susan-corners", vec![4131, 1]),
            ("susan-smoothing", vec![3555938768]),
        ];
        for (name, outs) in expected {
            let w = workload(name, Input::Large);
            let c = build(&w, &BuildConfig::baseline()).unwrap();
            let r = interpret(&c, &w).unwrap();
            assert_eq!(r.outputs, outs, "{name} output drifted");
        }
    }

    /// The five bit-counting strategies agree with each other — a
    /// self-checking property of the bitcount kernel.
    #[test]
    fn bitcount_strategies_agree() {
        let w = workload("bitcount", Input::Large);
        let c = build(&w, &BuildConfig::baseline()).unwrap();
        let r = interpret(&c, &w).unwrap();
        assert!(r.outputs.windows(2).all(|p| p[0] == p[1]));
    }
}
