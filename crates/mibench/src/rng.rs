//! Deterministic in-tree pseudo-random generator for input synthesis.
//!
//! The benchmark inputs only need *fixed, reproducible* value streams with
//! the right statistics (mostly-small values, occasional outliers); a
//! SplitMix64 stream provides that without any external dependency, which
//! keeps the workspace building offline.

/// A SplitMix64 generator (Steele et al., "Fast splittable pseudorandom
/// number generators"). Every method consumes exactly one stream step, so
/// generated inputs are stable across refactors of the call sites.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator seeded with `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics when `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform value in `[lo, hi)` over signed integers.
    ///
    /// # Panics
    /// Panics when `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (self.next_u64() % lo.abs_diff(hi)) as i64
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Fills `buf` with uniformly random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let v = r.range(5, 150);
            assert!((5..150).contains(&v));
            let s = r.range_i64(-64, 64);
            assert!((-64..64).contains(&s));
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = Rng::new(1);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut r = Rng::new(9);
        let mut buf = [0u8; 13];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
