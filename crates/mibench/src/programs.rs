//! The benchmark sources (mini-C).
//!
//! Each program reads its inputs from named globals (installed by the
//! harness), computes, and emits checksums with `out(...)` — the
//! observable stream both the interpreter and the simulator produce, which
//! the differential tests compare.

/// Returns the mini-C source of benchmark `name`.
///
/// # Panics
/// Panics on an unknown name.
pub fn source_of(name: &str) -> String {
    match name {
        "crc32" => CRC32.to_string(),
        "fft" => fft_source(),
        "basicmath" => BASICMATH.to_string(),
        "bitcount" => BITCOUNT.to_string(),
        "blowfish" => BLOWFISH.to_string(),
        "dijkstra" => DIJKSTRA.to_string(),
        "patricia" => PATRICIA.to_string(),
        "qsort" => QSORT.to_string(),
        "rijndael" => RIJNDAEL.to_string(),
        "sha" => SHA.to_string(),
        "stringsearch" => STRINGSEARCH.to_string(),
        "susan-edges" => susan_edges(),
        "susan-corners" => susan_corners(),
        "susan-smoothing" => susan_smoothing(),
        other => panic!("unknown benchmark `{other}`"),
    }
}

/// RQ7: source variants where every integer variable was widened to
/// 64 bits by the "programmer" (only dijkstra and stringsearch tolerate
/// this without changing observable behaviour, as in the paper).
pub fn rq7_wide_variant(name: &str) -> Option<String> {
    match name {
        "dijkstra" => Some(DIJKSTRA_W64.to_string()),
        "stringsearch" => Some(STRINGSEARCH_W64.to_string()),
        _ => None,
    }
}

// ---------------------------------------------------------------------------

const CRC32: &str = r#"
// CRC-32 over newline-separated text, tracking per-line lengths in a
// size_t-wide counter — the paper's CRC32 narrative: lengths are almost
// always < 256, with rare long outliers.
global u8 input[8192];
global u32 crctab[256];

void init_tab() {
    for (u32 i = 0; i < 256; i++) {
        u32 c = i;
        for (u32 k = 0; k < 8; k++) {
            if (c & 1) { c = 0xEDB88320 ^ (c >> 1); } else { c = c >> 1; }
        }
        crctab[i] = c;
    }
}

void main() {
    init_tab();
    u32 pos = 0;
    u32 total = 0;
    u32 lines = 0;
    u32 longest = 0;
    while (input[pos] != 0) {
        u32 crc = 0xFFFFFFFF;
        u64 len = 0;
        while (input[pos] != 0 && input[pos] != 10) {
            u32 c = input[pos];
            crc = crctab[(crc ^ c) & 0xFF] ^ (crc >> 8);
            pos++;
            len = len + 1;
        }
        if (input[pos] == 10) { pos++; }
        total = total ^ (crc ^ 0xFFFFFFFF);
        total += (u32)len;
        if ((u32)len > longest) { longest = (u32)len; }
        lines++;
    }
    out(total);
    out(lines);
    out(longest);
}
"#;

fn fft_source() -> String {
    // Twiddle factors for N = 64, Q10 fixed point (the paper's FFT is
    // floating point; DESIGN.md records the fixed-point substitution).
    let n = 64usize;
    let mut cos_t = String::new();
    let mut sin_t = String::new();
    for k in 0..n / 2 {
        let a = -2.0 * std::f64::consts::PI * (k as f64) / (n as f64);
        cos_t.push_str(&format!("{}, ", (a.cos() * 1024.0).round() as i64));
        sin_t.push_str(&format!("{}, ", (a.sin() * 1024.0).round() as i64));
    }
    format!(
        r#"
// Radix-2 in-place fixed-point FFT, N = 64, Q10 twiddles.
global u8 wave[128];
global i32 re[64];
global i32 im[64];
const i32 costab[32] = {{ {cos_t} }};
const i32 sintab[32] = {{ {sin_t} }};

u32 rev6(u32 x) {{
    u32 r = 0;
    for (u32 b = 0; b < 6; b++) {{
        r = (r << 1) | (x & 1);
        x = x >> 1;
    }}
    return r;
}}

void main() {{
    // Parse little-endian i16 samples.
    for (u32 i = 0; i < 64; i++) {{
        u32 lo = wave[i * 2];
        u32 hi = wave[i * 2 + 1];
        i32 v = (i32)(i16)(u16)(lo | (hi << 8));
        re[i] = v;
        im[i] = 0;
    }}
    // Bit-reversal permutation.
    for (u32 i = 0; i < 64; i++) {{
        u32 j = rev6(i);
        if (j > i) {{
            i32 t = re[i]; re[i] = re[j]; re[j] = t;
            i32 u = im[i]; im[i] = im[j]; im[j] = u;
        }}
    }}
    // Butterflies.
    for (u32 len = 2; len <= 64; len = len << 1) {{
        u32 half = len >> 1;
        u32 step = 64 / len;
        for (u32 base = 0; base < 64; base += len) {{
            for (u32 k = 0; k < half; k++) {{
                u32 tw = k * step;
                i32 wr = costab[tw];
                i32 wi = sintab[tw];
                i32 xr = re[base + k + half];
                i32 xi = im[base + k + half];
                i32 vr = (xr * wr - xi * wi) >> 10;
                i32 vi = (xr * wi + xi * wr) >> 10;
                i32 ur = re[base + k];
                i32 ui = im[base + k];
                re[base + k] = ur + vr;
                im[base + k] = ui + vi;
                re[base + k + half] = ur - vr;
                im[base + k + half] = ui - vi;
            }}
        }}
    }}
    // Spectral checksum.
    u32 acc = 0;
    for (u32 i = 0; i < 64; i++) {{
        i32 r = re[i];
        i32 m = im[i];
        if (r < 0) {{ r = 0 - r; }}
        if (m < 0) {{ m = 0 - m; }}
        acc += (u32)(r + m);
    }}
    out(acc);
    out((u32)re[1]);
    out((u32)im[7]);
}}
"#
    )
}

const BASICMATH: &str = r#"
// Integer square roots, GCDs and angle conversions over a number stream.
global u32 nums[96];

u32 isqrt(u32 x) {
    u32 r = 0;
    u32 bit = 1 << 30;
    while (bit > x) { bit = bit >> 2; }
    while (bit != 0) {
        if (x >= r + bit) {
            x -= r + bit;
            r = (r >> 1) + bit;
        } else {
            r = r >> 1;
        }
        bit = bit >> 2;
    }
    return r;
}

u32 gcd(u32 a, u32 b) {
    while (b != 0) {
        u32 t = a % b;
        a = b;
        b = t;
    }
    return a;
}

void main() {
    u32 s1 = 0;
    u32 s2 = 0;
    u32 s3 = 0;
    for (u32 i = 0; i < 96; i++) {
        u32 v = nums[i];
        s1 += isqrt(v);
        s2 ^= gcd(v | 1, (v >> 3) | 1);
        // deg → rad in Q12: rad = deg * 71 / 4068 (pi/180 ≈ 71/4068).
        u32 deg = v % 360;
        u32 rad_q12 = (deg * 71 * 4096) / 4068;
        s3 += rad_q12 >> 8;
    }
    out(s1);
    out(s2);
    out(s3);
}
"#;

const BITCOUNT: &str = r#"
// Five bit-counting strategies over a word stream (the MiBench kernel).
global u32 words[256];
global u8 bytetab[256];
const u8 nibtab[16] = {0,1,1,2,1,2,2,3,1,2,2,3,2,3,3,4};

u32 cnt_shift(u32 x) {
    u32 c = 0;
    while (x != 0) {
        c += x & 1;
        x = x >> 1;
    }
    return c;
}

u32 cnt_kernighan(u32 x) {
    u32 c = 0;
    while (x != 0) {
        x = x & (x - 1);
        c++;
    }
    return c;
}

u32 cnt_nibble(u32 x) {
    u32 c = 0;
    for (u32 i = 0; i < 8; i++) {
        c += nibtab[x & 0xF];
        x = x >> 4;
    }
    return c;
}

u32 cnt_byte(u32 x) {
    return (u32)bytetab[x & 0xFF] + bytetab[(x >> 8) & 0xFF]
         + bytetab[(x >> 16) & 0xFF] + bytetab[(x >> 24) & 0xFF];
}

u32 cnt_swar(u32 x) {
    x = x - ((x >> 1) & 0x55555555);
    x = (x & 0x33333333) + ((x >> 2) & 0x33333333);
    x = (x + (x >> 4)) & 0x0F0F0F0F;
    return (x * 0x01010101) >> 24;
}

void main() {
    for (u32 i = 0; i < 256; i++) {
        bytetab[i] = (u8)cnt_kernighan(i);
    }
    u32 a = 0; u32 b = 0; u32 c = 0; u32 d = 0; u32 e = 0;
    for (u32 i = 0; i < 256; i++) {
        u32 w = words[i];
        a += cnt_shift(w);
        b += cnt_kernighan(w);
        c += cnt_nibble(w);
        d += cnt_byte(w);
        e += cnt_swar(w);
    }
    out(a); out(b); out(c); out(d); out(e);
}
"#;

const BLOWFISH: &str = r#"
// Blowfish ECB encryption: PRNG-seeded boxes (substituting the hexdigits
// of pi, see DESIGN.md) + the genuine key schedule and 16-round Feistel
// network with its byte-extraction F function.
global u8 key[16];
global u8 plain[1024];
global u32 P[18];
global u32 S0[256];
global u32 S1[256];
global u32 S2[256];
global u32 S3[256];
global u32 lr[2];

u32 f(u32 x) {
    u32 a = (x >> 24) & 0xFF;
    u32 b = (x >> 16) & 0xFF;
    u32 c = (x >> 8) & 0xFF;
    u32 d = x & 0xFF;
    return ((S0[a] + S1[b]) ^ S2[c]) + S3[d];
}

void encrypt_pair() {
    u32 l = lr[0];
    u32 r = lr[1];
    for (u32 i = 0; i < 16; i++) {
        l = l ^ P[i];
        r = f(l) ^ r;
        u32 t = l; l = r; r = t;
    }
    u32 t2 = lr[0];
    lr[0] = r ^ P[17];
    lr[1] = l ^ P[16];
    t2 = 0;
}

void main() {
    // Box initialization (LCG in place of pi digits).
    u32 seed = 0x243F6A88;
    for (u32 i = 0; i < 18; i++) { seed = seed * 1664525 + 1013904223; P[i] = seed; }
    for (u32 i = 0; i < 256; i++) { seed = seed * 1664525 + 1013904223; S0[i] = seed; }
    for (u32 i = 0; i < 256; i++) { seed = seed * 1664525 + 1013904223; S1[i] = seed; }
    for (u32 i = 0; i < 256; i++) { seed = seed * 1664525 + 1013904223; S2[i] = seed; }
    for (u32 i = 0; i < 256; i++) { seed = seed * 1664525 + 1013904223; S3[i] = seed; }
    // Key mixing.
    for (u32 i = 0; i < 18; i++) {
        u32 k = 0;
        for (u32 j = 0; j < 4; j++) {
            k = (k << 8) | key[(i * 4 + j) % 16];
        }
        P[i] = P[i] ^ k;
    }
    // Key schedule: chain-encrypt zeros through P and the first S-box.
    lr[0] = 0; lr[1] = 0;
    for (u32 i = 0; i < 9; i++) {
        encrypt_pair();
        P[i * 2] = lr[0];
        P[i * 2 + 1] = lr[1];
    }
    for (u32 i = 0; i < 128; i++) {
        encrypt_pair();
        S0[i * 2] = lr[0];
        S0[i * 2 + 1] = lr[1];
    }
    // ECB-encrypt the payload.
    u32 acc = 0;
    for (u32 blk = 0; blk < 128; blk++) {
        u32 l = 0;
        u32 r = 0;
        for (u32 j = 0; j < 4; j++) {
            l = (l << 8) | plain[blk * 8 + j];
            r = (r << 8) | plain[blk * 8 + 4 + j];
        }
        lr[0] = l; lr[1] = r;
        encrypt_pair();
        acc = acc ^ lr[0] ^ (lr[1] >> 3);
    }
    out(acc);
}
"#;

const DIJKSTRA: &str = r#"
// Repeated single-source shortest paths over a dense 32-node graph with
// byte-sized edge weights (weight 200 = no edge).
global u8 adj[1024];
global u32 dist[32];
global u8 visited[32];

void shortest(u32 src) {
    for (u32 i = 0; i < 32; i++) {
        dist[i] = 1000000;
        visited[i] = 0;
    }
    dist[src] = 0;
    for (u32 it = 0; it < 32; it++) {
        u32 best = 0xFFFFFFFF;
        u32 u = 32;
        for (u32 i = 0; i < 32; i++) {
            if (visited[i] == 0 && dist[i] < best) {
                best = dist[i];
                u = i;
            }
        }
        if (u == 32) { break; }
        visited[u] = 1;
        for (u32 v = 0; v < 32; v++) {
            u32 w = adj[u * 32 + v];
            if (w < 200) {
                u32 nd = best + w;
                if (nd < dist[v]) { dist[v] = nd; }
            }
        }
    }
}

void main() {
    u32 acc = 0;
    for (u32 src = 0; src < 10; src++) {
        shortest(src);
        for (u32 i = 0; i < 32; i++) {
            if (dist[i] < 1000000) { acc += dist[i]; }
        }
    }
    out(acc);
}
"#;

const DIJKSTRA_W64: &str = r#"
// RQ7 variant: every integer variable widened to 64 bits.
global u8 adj[1024];
global u64 dist[32];
global u8 visited[32];

void shortest(u64 src) {
    for (u64 i = 0; i < 32; i++) {
        dist[i] = 1000000;
        visited[i] = 0;
    }
    dist[src] = 0;
    for (u64 it = 0; it < 32; it++) {
        u64 best = 0xFFFFFFFFFFFF;
        u64 u = 32;
        for (u64 i = 0; i < 32; i++) {
            if (visited[i] == 0 && dist[i] < best) {
                best = dist[i];
                u = i;
            }
        }
        if (u == 32) { break; }
        visited[u] = 1;
        for (u64 v = 0; v < 32; v++) {
            u64 w = adj[u * 32 + v];
            if (w < 200) {
                u64 nd = best + w;
                if (nd < dist[v]) { dist[v] = nd; }
            }
        }
    }
}

void main() {
    u64 acc = 0;
    for (u64 src = 0; src < 10; src++) {
        shortest(src);
        for (u64 i = 0; i < 32; i++) {
            if (dist[i] < 1000000) { acc = acc + dist[i]; }
        }
    }
    out((u32)acc);
}
"#;

const PATRICIA: &str = r#"
// Patricia-style radix trie over IPv4-like keys: insert-or-find with
// bit-index tests, then membership queries.
global u32 addrs[192];
global u32 node_key[512];
global u32 node_bit[512];
global u32 node_left[512];
global u32 node_right[512];
global u32 meta[2]; // [0] = node count, [1] = hits

u32 bit_of(u32 key, u32 b) {
    return (key >> (31 - b)) & 1;
}

u32 find_leaf(u32 key) {
    u32 n = 0;
    while (node_bit[n] < 32) {
        if (bit_of(key, node_bit[n]) != 0) {
            n = node_right[n];
        } else {
            n = node_left[n];
        }
    }
    return n;
}

void insert(u32 key) {
    u32 count = meta[0];
    if (count == 0) {
        node_key[0] = key;
        node_bit[0] = 32;
        meta[0] = 1;
        return;
    }
    u32 leaf = find_leaf(key);
    u32 existing = node_key[leaf];
    if (existing == key) { return; }
    // First differing bit.
    u32 diff = existing ^ key;
    u32 b = 0;
    while (((diff >> (31 - b)) & 1) == 0) { b++; }
    // New internal node + new leaf.
    u32 internal = count;
    u32 newleaf = count + 1;
    if (count + 2 > 512) { return; }
    meta[0] = count + 2;
    node_key[newleaf] = key;
    node_bit[newleaf] = 32;
    // Re-descend to the insertion point: the first node whose bit ≥ b.
    u32 n = 0;
    u32 parent = 0xFFFFFFFF;
    u32 went_right = 0;
    while (node_bit[n] < b && node_bit[n] < 32) {
        parent = n;
        went_right = bit_of(key, node_bit[n]);
        if (went_right != 0) { n = node_right[n]; } else { n = node_left[n]; }
    }
    node_bit[internal] = b;
    if (bit_of(key, b) != 0) {
        node_right[internal] = newleaf;
        node_left[internal] = n;
    } else {
        node_left[internal] = newleaf;
        node_right[internal] = n;
    }
    if (parent == 0xFFFFFFFF) {
        // New root: swap contents with slot 0.
        u32 tb = node_bit[0]; u32 tk = node_key[0];
        u32 tl = node_left[0]; u32 tr = node_right[0];
        node_bit[0] = node_bit[internal]; node_key[0] = node_key[internal];
        node_left[0] = node_left[internal]; node_right[0] = node_right[internal];
        node_bit[internal] = tb; node_key[internal] = tk;
        node_left[internal] = tl; node_right[internal] = tr;
        if (node_left[0] == 0) { node_left[0] = internal; }
        if (node_right[0] == 0) { node_right[0] = internal; }
    } else if (went_right != 0) {
        node_right[parent] = internal;
    } else {
        node_left[parent] = internal;
    }
}

void main() {
    meta[0] = 0;
    meta[1] = 0;
    for (u32 i = 0; i < 128; i++) {
        insert(addrs[i]);
    }
    u32 hits = 0;
    for (u32 i = 0; i < 192; i++) {
        u32 leaf = find_leaf(addrs[i]);
        if (node_key[leaf] == addrs[i]) { hits++; }
    }
    out(hits);
    out(meta[0]);
}
"#;

const QSORT: &str = r#"
// Recursive quicksort driven through a comparison *function call* — the
// paper's qsort pays misspeculation double-execution inside cmp.
global u32 arr[600];

i32 cmp(u32 a, u32 b) {
    if (a < b) { return 0 - 1; }
    if (a > b) { return 1; }
    return 0;
}

void qs(u32 lo, u32 hi) {
    if (lo >= hi) { return; }
    u32 pivot = arr[(lo + hi) / 2];
    u32 i = lo;
    u32 j = hi;
    while (i <= j) {
        while (cmp(arr[i], pivot) < 0) { i++; }
        while (cmp(arr[j], pivot) > 0) { j--; }
        if (i <= j) {
            u32 t = arr[i];
            arr[i] = arr[j];
            arr[j] = t;
            i++;
            if (j == 0) { break; }
            j--;
        }
    }
    if (j > lo) { qs(lo, j); }
    if (i < hi) { qs(i, hi); }
}

void main() {
    qs(0, 599);
    u32 acc = 0;
    u32 sorted = 1;
    for (u32 i = 0; i < 600; i++) {
        acc = acc * 31 + (arr[i] & 0xFFFF);
        if (i > 0 && arr[i - 1] > arr[i]) { sorted = 0; }
    }
    out(acc);
    out(sorted);
}
"#;

const RIJNDAEL: &str = r#"
// AES-128 ECB, byte-oriented: GF(2^8) log/alog S-box construction, key
// expansion, and SubBytes/ShiftRows/MixColumns/AddRoundKey rounds — the
// workload where BITSPEC peaks (28.2% in the paper).
global u8 key[16];
global u8 plain[896];
global u8 sbox[256];
global u8 alog[256];
global u8 logt[256];
global u8 rk[176];
global u8 st[16];

u8 xtime(u8 x) {
    u32 v = (u32)x << 1;
    if (x & 0x80) { v = v ^ 0x1B; }
    return (u8)v;
}

u8 gmul(u8 a, u8 b) {
    if (a == 0 || b == 0) { return 0; }
    u32 s = (u32)logt[a] + logt[b];
    if (s >= 255) { s -= 255; }
    return alog[s];
}

void init_sbox() {
    // Generator 3 over GF(2^8).
    u8 a = 1;
    for (u32 i = 0; i < 255; i++) {
        alog[i] = a;
        logt[a] = (u8)i;
        a = a ^ xtime(a);
    }
    alog[255] = alog[0];
    sbox[0] = 0x63;
    for (u32 i = 1; i < 256; i++) {
        u8 inv = alog[255 - logt[i]];
        u32 x = inv;
        u32 r = x;
        for (u32 k = 0; k < 4; k++) {
            x = ((x << 1) | (x >> 7)) & 0xFF;
            r = r ^ x;
        }
        sbox[i] = (u8)(r ^ 0x63);
    }
}

void expand_key() {
    for (u32 i = 0; i < 16; i++) { rk[i] = key[i]; }
    u8 rcon = 1;
    for (u32 i = 16; i < 176; i += 4) {
        u8 t0 = rk[i - 4];
        u8 t1 = rk[i - 3];
        u8 t2 = rk[i - 2];
        u8 t3 = rk[i - 1];
        if (i % 16 == 0) {
            u8 tmp = t0;
            t0 = sbox[t1] ^ rcon;
            t1 = sbox[t2];
            t2 = sbox[t3];
            t3 = sbox[tmp];
            rcon = xtime(rcon);
        }
        rk[i] = rk[i - 16] ^ t0;
        rk[i + 1] = rk[i - 15] ^ t1;
        rk[i + 2] = rk[i - 14] ^ t2;
        rk[i + 3] = rk[i - 13] ^ t3;
    }
}

void add_round_key(u32 round) {
    for (u32 i = 0; i < 16; i++) {
        st[i] = st[i] ^ rk[round * 16 + i];
    }
}

void sub_shift() {
    // SubBytes + ShiftRows combined.
    for (u32 i = 0; i < 16; i++) { st[i] = sbox[st[i]]; }
    u8 t = st[1]; st[1] = st[5]; st[5] = st[9]; st[9] = st[13]; st[13] = t;
    u8 u = st[2]; st[2] = st[10]; st[10] = u;
    u8 v = st[6]; st[6] = st[14]; st[14] = v;
    u8 w = st[15]; st[15] = st[11]; st[11] = st[7]; st[7] = st[3]; st[3] = w;
}

void mix_columns() {
    for (u32 c = 0; c < 4; c++) {
        u8 a0 = st[c * 4];
        u8 a1 = st[c * 4 + 1];
        u8 a2 = st[c * 4 + 2];
        u8 a3 = st[c * 4 + 3];
        u8 x = a0 ^ a1 ^ a2 ^ a3;
        st[c * 4]     = a0 ^ x ^ xtime(a0 ^ a1);
        st[c * 4 + 1] = a1 ^ x ^ xtime(a1 ^ a2);
        st[c * 4 + 2] = a2 ^ x ^ xtime(a2 ^ a3);
        st[c * 4 + 3] = a3 ^ x ^ xtime(a3 ^ a0);
    }
}

void main() {
    init_sbox();
    expand_key();
    u32 acc = 0;
    for (u32 blk = 0; blk < 56; blk++) {
        for (u32 i = 0; i < 16; i++) { st[i] = plain[blk * 16 + i]; }
        add_round_key(0);
        for (u32 round = 1; round < 10; round++) {
            sub_shift();
            mix_columns();
            add_round_key(round);
        }
        sub_shift();
        add_round_key(10);
        for (u32 i = 0; i < 16; i++) {
            acc = (acc * 257) ^ st[i];
        }
    }
    out(acc);
    out(gmul(87, 131));
}
"#;

const SHA: &str = r#"
// SHA-1 with genuine padding; 32-bit rotate-heavy — the workload where
// static demanded-bits analysis finds nothing (paper §2.2).
global u8 message[3072];
global u32 w[80];
global u32 h[5];

u32 rotl(u32 x, u32 n) {
    return (x << n) | (x >> (32 - n));
}

void process(u32 base, u32 final_len, u32 is_final, u32 is_pad_only) {
    for (u32 t = 0; t < 16; t++) {
        u32 x = 0;
        for (u32 b = 0; b < 4; b++) {
            u32 idx = base + t * 4 + b;
            u32 byte = 0;
            if (is_final == 0) {
                byte = message[idx];
            } else {
                u32 off = t * 4 + b;
                if (is_pad_only == 0 && off < final_len) { byte = message[idx]; }
                else if (is_pad_only == 0 && off == final_len) { byte = 0x80; }
                else if (is_pad_only == 1 && off == 0 && final_len == 0xFFFFFFFF) { byte = 0; }
                if (off == 56) { byte = (3072 * 8) >> 24 & 0xFF; }
                if (off == 57) { byte = ((3072 * 8) >> 16) & 0xFF; }
                if (off == 58) { byte = ((3072 * 8) >> 8) & 0xFF; }
                if (off == 59) { byte = (3072 * 8) & 0xFF; }
                if (off == 60) { byte = 0; }
            }
            x = (x << 8) | byte;
        }
        w[t] = x;
    }
    // Length goes in the last two words of the final block.
    if (is_final == 1) {
        w[14] = 0;
        w[15] = 3072 * 8;
        if (is_pad_only == 0) {
            // first byte 0x80 already placed above when final_len < 64
            w[0] = w[0] | 0;
        }
    }
    for (u32 t = 16; t < 80; t++) {
        w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
    }
    u32 a = h[0]; u32 b = h[1]; u32 c = h[2]; u32 d = h[3]; u32 e = h[4];
    for (u32 t = 0; t < 80; t++) {
        u32 f = 0;
        u32 k = 0;
        if (t < 20) { f = (b & c) | ((~b) & d); k = 0x5A827999; }
        else if (t < 40) { f = b ^ c ^ d; k = 0x6ED9EBA1; }
        else if (t < 60) { f = (b & c) | (b & d) | (c & d); k = 0x8F1BBCDC; }
        else { f = b ^ c ^ d; k = 0xCA62C1D6; }
        u32 tmp = rotl(a, 5) + f + e + k + w[t];
        e = d; d = c; c = rotl(b, 30); b = a; a = tmp;
    }
    h[0] += a; h[1] += b; h[2] += c; h[3] += d; h[4] += e;
}

void main() {
    h[0] = 0x67452301; h[1] = 0xEFCDAB89; h[2] = 0x98BADCFE;
    h[3] = 0x10325476; h[4] = 0xC3D2E1F0;
    // 3072 bytes = 48 whole blocks; padding occupies one extra block.
    for (u32 blk = 0; blk < 48; blk++) {
        process(blk * 64, 64, 0, 0);
    }
    process(0, 0, 1, 0);
    out(h[0]); out(h[1]); out(h[2]); out(h[3]); out(h[4]);
}
"#;

const STRINGSEARCH: &str = r#"
// Boyer–Moore–Horspool multi-pattern search. Lengths and positions use
// u64 (the original's size_t) — the paper's Listing 1 scenario: patterns
// ≤ 12 bytes, text lines ≤ 56, all comfortably 8-bit at run time.
global u8 text[2048];
global u8 pats[128];
global u8 skip[256];

u64 strlen8(u8* s) {
    u64 n = 0;
    while (s[n] != 0) { n = n + 1; }
    return n;
}

u32 search(u8* pat, u64 patlen, u64 textlen) {
    for (u32 i = 0; i < 256; i++) { skip[i] = (u8)patlen; }
    for (u64 i = 0; i + 1 < patlen; i = i + 1) {
        skip[pat[i]] = (u8)(patlen - 1 - i);
    }
    u32 found = 0;
    u64 pos = patlen - 1;
    while (pos < textlen) {
        u64 j = 0;
        while (j < patlen && pat[patlen - 1 - j] == text[pos - j]) {
            j = j + 1;
        }
        if (j == patlen) {
            found++;
            pos = pos + patlen;
        } else {
            pos = pos + skip[text[pos]];
        }
    }
    return found;
}

void main() {
    u64 textlen = strlen8(text);
    u32 total = 0;
    u32 p = 0;
    while (pats[p] != 0) {
        u64 patlen = strlen8(&pats[p]);
        total += search(&pats[p], patlen, textlen);
        p = p + (u32)patlen + 1;
    }
    out(total);
    out((u32)textlen);
}
"#;

const STRINGSEARCH_W64: &str = r#"
// RQ7 variant: all counters widened to 64 bits.
global u8 text[2048];
global u8 pats[128];
global u8 skip[256];

u64 strlen8(u8* s) {
    u64 n = 0;
    while (s[n] != 0) { n = n + 1; }
    return n;
}

u64 search(u8* pat, u64 patlen, u64 textlen) {
    for (u64 i = 0; i < 256; i = i + 1) { skip[i] = (u8)patlen; }
    for (u64 i = 0; i + 1 < patlen; i = i + 1) {
        skip[pat[i]] = (u8)(patlen - 1 - i);
    }
    u64 found = 0;
    u64 pos = patlen - 1;
    while (pos < textlen) {
        u64 j = 0;
        while (j < patlen && pat[patlen - 1 - j] == text[pos - j]) {
            j = j + 1;
        }
        if (j == patlen) {
            found = found + 1;
            pos = pos + patlen;
        } else {
            pos = pos + skip[text[pos]];
        }
    }
    return found;
}

void main() {
    u64 textlen = strlen8(text);
    u64 total = 0;
    u64 p = 0;
    while (pats[p] != 0) {
        u64 patlen = strlen8(&pats[p]);
        total = total + search(&pats[p], patlen, textlen);
        p = p + patlen + 1;
    }
    out((u32)total);
    out((u32)textlen);
}
"#;

/// Shared SUSAN preamble: the brightness-similarity LUT and image access.
const SUSAN_COMMON: &str = r#"
global u8 image[1024];
global u8 lut[512];

void init_lut() {
    // Brightness-similarity table: 100 * exp(-(d/t)^6) approximated with
    // an integer rational falloff, t = 27 (SUSAN's default threshold).
    for (i32 d = 0 - 255; d <= 255; d++) {
        i32 ad = d;
        if (ad < 0) { ad = 0 - ad; }
        u32 num = 100 * 27 * 27;
        u32 den = 27 * 27 + (u32)(ad * ad);
        u32 v = num / den;
        if (ad > 60) { v = 0; }
        lut[(u32)(d + 256)] = (u8)v;
    }
}

u32 usan(u32 x, u32 y) {
    // Sum of brightness similarities over a 5x5 mask (the circular 37-pixel
    // mask trimmed to our 32x32 images).
    i32 center = image[y * 32 + x];
    u32 n = 0;
    for (u32 dy = 0; dy < 5; dy++) {
        for (u32 dx = 0; dx < 5; dx++) {
            u32 px = x + dx - 2;
            u32 py = y + dy - 2;
            i32 p = image[py * 32 + px];
            n += lut[(u32)(p - center + 256)];
        }
    }
    return n;
}
"#;

pub(crate) fn susan_edges() -> String {
    format!(
        "{SUSAN_COMMON}\n{}",
        r#"
void main() {
    init_lut();
    u32 gmax = 2500; // geometric threshold ~ 3/4 of max USAN
    u32 edges = 0;
    u32 acc = 0;
    for (u32 y = 2; y < 30; y++) {
        for (u32 x = 2; x < 30; x++) {
            u32 n = usan(x, y);
            if (n < gmax) {
                u32 r = gmax - n;
                acc += r >> 4;
                if (r > 600) { edges++; }
            }
        }
    }
    out(acc);
    out(edges);
}
"#
    )
}

pub(crate) fn susan_corners() -> String {
    format!(
        "{SUSAN_COMMON}\n{}",
        r#"
void main() {
    init_lut();
    u32 gmax = 1400; // tighter geometric threshold for corners
    u32 corners = 0;
    u32 acc = 0;
    for (u32 y = 2; y < 30; y++) {
        for (u32 x = 2; x < 30; x++) {
            u32 n = usan(x, y);
            if (n < gmax) {
                u32 r = gmax - n;
                acc += r;
                if (r > 500) { corners++; }
            }
        }
    }
    out(acc);
    out(corners);
}
"#
    )
}

pub(crate) fn susan_smoothing() -> String {
    format!(
        "{SUSAN_COMMON}\nglobal u8 smoothed[1024];\n{}",
        r#"
void main() {
    init_lut();
    for (u32 y = 2; y < 30; y++) {
        for (u32 x = 2; x < 30; x++) {
            i32 center = image[y * 32 + x];
            u32 total = 0;
            u32 weight = 0;
            for (u32 dy = 0; dy < 5; dy++) {
                for (u32 dx = 0; dx < 5; dx++) {
                    if (dx == 2 && dy == 2) { continue; }
                    u32 px = x + dx - 2;
                    u32 py = y + dy - 2;
                    i32 p = image[py * 32 + px];
                    u32 wgt = lut[(u32)(p - center + 256)];
                    total += wgt * (u32)p;
                    weight += wgt;
                }
            }
            if (weight > 0) {
                smoothed[y * 32 + x] = (u8)(total / weight);
            } else {
                smoothed[y * 32 + x] = (u8)center;
            }
        }
    }
    u32 acc = 0;
    for (u32 i = 0; i < 1024; i++) {
        acc = acc * 31 + smoothed[i];
    }
    out(acc);
}
"#
    )
}

// ---------------------------------------------------------------------------

/// Synthetic K-function workload for the function-granular codegen cache
/// studies (incremental rebuilds, parallel codegen, determinism tests).
///
/// Emits `k` structurally similar but constant-distinct `u32 -> u32`
/// mixer functions plus a `main` that folds every function over the
/// input bytes. Each function is self-contained (no calls between the
/// mixers), so with the expander disabled the module reaches the backend
/// as `k + 1` independent compilation units. `edit` perturbs only `f0`'s
/// round constant — bumping it models a one-function source edit and must
/// invalidate exactly one per-function artifact.
pub fn multifn_source(k: usize, edit: u32) -> String {
    use std::fmt::Write as _;
    let mut s = String::from(
        "// Synthetic multi-function mixer workload (function-cache studies).\n\
         global u8 input[64];\n",
    );
    for i in 0..k {
        let i32_ = i as u32;
        let c1 = 0x9E37_79B9u32.wrapping_mul(i32_ + 1) ^ if i == 0 { edit } else { 0 };
        let c2 = 0x85EB_CA6Bu32.wrapping_add(i32_ << 7);
        let c3 = 0xC2B2_AE35u32 ^ i32_.wrapping_mul(0x27D4_EB2F);
        write!(
            s,
            r#"
u32 f{i}(u32 x) {{
    u32 a = x ^ {c1};
    u32 b = (x << 3) + {c2};
    u32 c = (a >> 2) ^ b;
    u32 d = {c3};
    u32 e = a + b;
    u32 g = (x >> 5) ^ {c2};
    u32 h = (a << 1) + (b >> 7);
    u32 m = c ^ d ^ e;
    for (u32 j = 0; j < 8; j++) {{
"#
        )
        .unwrap();
        // Three unrolled mixing rounds per iteration: 8 live accumulators
        // plus round temporaries keep the register allocator under real
        // pressure, so per-function codegen cost dominates the build.
        for r in 0..3u32 {
            let rc = c3.rotate_left(r * 11).wrapping_add(r * 0x9E37);
            write!(
                s,
                r#"        u32 t{r} = (a ^ (b >> {sh1})) + {rc};
        a = ((a << 5) | (a >> 27)) ^ b;
        b = b + (c ^ (j * {mul}));
        c = (c >> 1) + (a ^ d) + t{r};
        d = d ^ (a * 3) ^ (b * 5);
        e = (e + c) ^ (d >> 3) ^ (t{r} << {sh2});
        g = ((g << 7) | (g >> 25)) + (e ^ a);
        h = (h ^ (g >> 2)) + (b * 7) + (t{r} >> 1);
        m = (m + h) ^ ((c << 4) | (d >> 28));
"#,
                sh1 = 3 + r,
                sh2 = 2 + r,
                mul = 9 + 2 * r,
            )
            .unwrap();
        }
        s.push_str(
            r#"    }
    a = (a ^ (g >> 3)) + (h << 1);
    b = (b + m) ^ (e >> 2);
    return (a ^ b) + (c ^ d) + (e ^ g) + (h ^ m);
}
"#,
        );
    }
    s.push_str("\nvoid main() {\n    u32 acc = 0;\n    for (u32 i = 0; i < 16; i++) {\n        u32 x = (u32)input[i] + (i << 8);\n");
    for i in 0..k {
        writeln!(s, "        acc = acc ^ f{i}(x + {i});").unwrap();
    }
    s.push_str("    }\n    out(acc);\n}\n");
    s
}
