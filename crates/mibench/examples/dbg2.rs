use bitspec::*;
use mibench::{workload, Input};
fn main() {
    for name in ["fft", "sha", "blowfish", "stringsearch"] {
        let w = workload(name, Input::Large);
        let base = build(&w, &BuildConfig::baseline()).unwrap();
        let bs = build(&w, &BuildConfig::bitspec()).unwrap();
        let rb = simulate(&base, &w).unwrap();
        let rs = simulate(&bs, &w).unwrap();
        println!(
            "{name}: narrowed={} truncs={} elided={} cmpelim={} regions={}",
            bs.squeeze.narrowed,
            bs.squeeze.spec_truncs,
            bs.squeeze.bitmasks_elided,
            bs.squeeze.compares_eliminated,
            bs.squeeze.regions
        );
        println!(
            "  base: dyn={} spl={} sps={} cp={} E={:.0}",
            rb.counts.dyn_insts,
            rb.counts.spill_loads,
            rb.counts.spill_stores,
            rb.counts.copies,
            rb.total_energy()
        );
        println!(
            "  bspc: dyn={} spl={} sps={} cp={} E={:.0} ms={}",
            rs.counts.dyn_insts,
            rs.counts.spill_loads,
            rs.counts.spill_stores,
            rs.counts.copies,
            rs.total_energy(),
            rs.counts.misspecs
        );
    }
}
