//! RQ5 deep dive: inverting the register allocator's handler-weight
//! heuristic under the MIN heuristic (the paper's CFG_orig quality study).
use bitspec::*;
use mibench::{workload, Input};
fn main() {
    println!(
        "{:<16} {:>14} {:>14}",
        "benchmark", "MIN dynΔ%", "MIN-inv dynΔ%"
    );
    for name in ["crc32", "dijkstra", "sha", "stringsearch"] {
        let w = workload(name, Input::Large);
        let base = build(&w, &BuildConfig::baseline()).unwrap();
        let rb = simulate(&base, &w).unwrap();
        let run_pref = |prefer: bool| {
            let cfg = BuildConfig {
                empirical_gate: false,
                spill_prefer_orig: prefer,
                ..BuildConfig::bitspec_with(BitwidthHeuristic::Min)
            };
            let c = build(&w, &cfg).unwrap();
            let r = simulate(&c, &w).unwrap();
            100.0 * (r.counts.dyn_insts as f64 / rb.counts.dyn_insts as f64 - 1.0)
        };
        println!(
            "{name:<16} {:>13.1}% {:>13.1}%",
            run_pref(true),
            run_pref(false)
        );
    }
}
