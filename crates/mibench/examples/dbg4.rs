use backend::mir::RegClass;
use backend::regalloc::Loc;
use bitspec::*;
use mibench::{workload, Input};
fn main() {
    let w = workload("sha", Input::Large);
    let c = build(&w, &BuildConfig::bitspec()).unwrap();
    let layout = interp::Layout::new(&c.module);
    let opts = backend::CodegenOpts {
        bitspec: true,
        compact: false,
        spill_prefer_orig: true,
    };
    let fid = c.module.func_by_name("main").unwrap();
    let mir = backend::isel::select_function(&c.module, fid, &layout, &opts);
    // count vregs used in spec-side blocks that are spilled
    let a = backend::regalloc::allocate(mir, &opts);
    let mut spec_spilled = 0;
    let mut orig_spilled = 0;
    let mut byte_spilled = 0;
    let mut spec_use_count = std::collections::HashMap::new();
    for b in a.mir.block_ids() {
        if !a.mir.block(b).spec_side {
            continue;
        }
        for i in &a.mir.block(b).insts {
            for v in i.uses().into_iter().chain(i.defs()) {
                *spec_use_count.entry(v).or_insert(0u32) += 1;
            }
        }
    }
    for (vi, loc) in a.locs.iter().enumerate() {
        if let Loc::Spill(s) = loc {
            if *s == u32::MAX {
                continue;
            }
            let v = backend::mir::VReg(vi as u32);
            if spec_use_count.contains_key(&v) {
                spec_spilled += 1;
            } else {
                orig_spilled += 1;
            }
            if matches!(a.mir.classes[vi], RegClass::Byte) {
                byte_spilled += 1;
            }
        }
    }
    println!("spilled: spec-used={spec_spilled} orig-only={orig_spilled} byte={byte_spilled} total_slots={}", a.spill_slots);
    // Max simultaneous live in spec blocks: approximate via conflicts at callee pool
    println!(
        "callee used: {:?} has_calls={}",
        a.used_callee_saved, a.has_calls
    );
}
