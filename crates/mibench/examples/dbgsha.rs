use bitspec::*;
use mibench::{workload, Input};
fn main() {
    let w = workload("sha", Input::Large);
    let base = build(&w, &BuildConfig::baseline()).unwrap();
    let refr = simulate(&base, &w).unwrap().outputs;
    let c = build(&w, &BuildConfig::bitspec_with(BitwidthHeuristic::Avg)).unwrap();
    let ir = interpret(&c, &w).unwrap();
    let sim = simulate(&c, &w).unwrap();
    println!("ref  = {:?}", refr);
    println!("ir   = {:?} (misspecs={})", ir.outputs, ir.stats.misspecs);
    println!(
        "sim  = {:?} (misspecs={})",
        sim.outputs, sim.counts.misspecs
    );
}
