use backend::regalloc::Loc;
use bitspec::*;
use mibench::{workload, Input};
fn main() {
    for name in ["sha", "blowfish"] {
        let w = workload(name, Input::Large);
        for (label, cfg) in [
            ("base", BuildConfig::baseline()),
            ("bspc", BuildConfig::bitspec()),
        ] {
            let c = build(&w, &cfg).unwrap();
            let layout = interp::Layout::new(&c.module);
            let opts = backend::CodegenOpts {
                bitspec: label == "bspc",
                compact: false,
                spill_prefer_orig: true,
            };
            for fid in c.module.func_ids() {
                let f = c.module.func(fid);
                if f.name != "main" && !f.name.contains("process") {
                    continue;
                }
                let mir = backend::isel::select_function(&c.module, fid, &layout, &opts);
                let nb = mir.blocks.len();
                let nv = mir.classes.len();
                let a = backend::regalloc::allocate(mir, &opts);
                let spilled: Vec<usize> = a.locs.iter().enumerate().filter(|(_, l)| matches!(l, Loc::Spill(s) if **l != Loc::Spill(u32::MAX) && *s != u32::MAX)).map(|(i, _)| i).collect();
                println!(
                    "{name}/{label} fn {}: blocks={nb} vregs={nv} spill_slots={} regions={}",
                    a.mir.name,
                    a.spill_slots,
                    a.mir.regions.len()
                );
                let _ = spilled;
            }
        }
    }
}
