//! Property-based tests of the IR's core data structures and analyses.

use proptest::prelude::*;
use sir::builder::FunctionBuilder;
use sir::dom::DomTree;
use sir::liveness::Liveness;
use sir::types::required_bits;
use sir::{BinOp, Cc, Width};

proptest! {
    /// `required_bits` is the inverse of a bit-length bound.
    #[test]
    fn required_bits_bounds_value(v in any::<u64>()) {
        let b = required_bits(v);
        prop_assert!(b >= 1 && b <= 64);
        if b < 64 {
            prop_assert!(v < (1u64 << b));
        }
        if v > 0 {
            prop_assert!(v >= (1u64 << (b - 1)));
        }
    }

    /// Truncation is idempotent and masks exactly.
    #[test]
    fn width_truncate_idempotent(v in any::<u64>()) {
        for w in Width::ALL {
            let t = w.truncate(v);
            prop_assert_eq!(w.truncate(t), t);
            prop_assert_eq!(t, v & w.mask());
        }
    }

    /// Sign extension of a truncated value round-trips.
    #[test]
    fn sext_roundtrip(v in any::<u64>()) {
        for w in Width::ALL {
            let t = w.truncate(v);
            let s = w.sext_to_64(t);
            prop_assert_eq!(w.truncate(s as u64), t, "width {}", w);
        }
    }

    /// Negation, swapping and evaluation of condition codes agree on all
    /// inputs at all widths.
    #[test]
    fn cc_laws(a in any::<u64>(), b in any::<u64>()) {
        let ccs = [
            Cc::Eq, Cc::Ne, Cc::Ult, Cc::Ule, Cc::Ugt, Cc::Uge,
            Cc::Slt, Cc::Sle, Cc::Sgt, Cc::Sge,
        ];
        for w in Width::ALL {
            for cc in ccs {
                prop_assert_eq!(cc.eval(w, a, b), !cc.negated().eval(w, a, b));
                prop_assert_eq!(cc.eval(w, a, b), cc.swapped().eval(w, b, a));
            }
        }
    }

    /// On randomly shaped branching chains: the entry dominates every
    /// reachable block, dominance is reflexive, and liveness live-in of the
    /// entry is empty for a function whose values are all locally defined.
    #[test]
    fn dominator_and_liveness_sanity(splits in prop::collection::vec(any::<bool>(), 1..8)) {
        let mut fb = FunctionBuilder::new("p", vec![Width::W32], Some(Width::W32));
        let x = fb.param(0);
        let mut acc = fb.iconst(Width::W32, 1);
        let mut blocks = vec![fb.current_block()];
        for (i, two_way) in splits.iter().enumerate() {
            let nxt = fb.new_block();
            if *two_way {
                let alt = fb.new_block();
                let c = fb.icmp(Cc::Ult, Width::W32, acc, x);
                fb.cond_br(c, nxt, alt);
                fb.switch_to(alt);
                fb.br(nxt);
                blocks.push(alt);
            } else {
                fb.br(nxt);
            }
            fb.switch_to(nxt);
            blocks.push(nxt);
            let k = fb.iconst(Width::W32, i as u64 + 1);
            acc = fb.bin(BinOp::Add, Width::W32, k, k);
        }
        fb.ret(Some(acc));
        let f = fb.finish();
        sir::verify::verify_function(&f).unwrap();
        let dt = DomTree::compute(&f);
        for b in f.block_ids() {
            if dt.is_reachable(b) {
                prop_assert!(dt.dominates(f.entry, b));
                prop_assert!(dt.dominates(b, b));
            }
        }
        let lv = Liveness::compute(&f);
        prop_assert!(lv.live_in_of(f.entry).is_empty());
    }
}
