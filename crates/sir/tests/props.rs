//! Deterministic property tests of the IR's core data structures and
//! analyses: the former proptest strategies are replaced by fixed
//! adversarial value sets and exhaustive small-pattern enumeration so the
//! suite runs offline with no external dependencies.

use sir::builder::FunctionBuilder;
use sir::dom::DomTree;
use sir::liveness::Liveness;
use sir::types::required_bits;
use sir::{BinOp, Cc, Width};

/// Boundary-heavy 64-bit values: powers of two and their neighbours, plus
/// mixed bit patterns — the cases where bit-length and sign logic break.
fn interesting_u64() -> Vec<u64> {
    let mut vs = vec![0u64, u64::MAX, 0xAAAA_AAAA_AAAA_AAAA, 0x5555_5555_5555_5555];
    for b in 0..64 {
        let p = 1u64 << b;
        vs.push(p);
        vs.push(p.wrapping_sub(1));
        vs.push(p.wrapping_add(1));
        vs.push(p.wrapping_mul(0x9E37_79B9));
    }
    vs
}

/// `required_bits` is the inverse of a bit-length bound.
#[test]
fn required_bits_bounds_value() {
    for v in interesting_u64() {
        let b = required_bits(v);
        assert!((1..=64).contains(&b), "v={v:#x} b={b}");
        if b < 64 {
            assert!(v < (1u64 << b), "v={v:#x} b={b}");
        }
        if v > 0 {
            assert!(v >= (1u64 << (b - 1)), "v={v:#x} b={b}");
        }
    }
}

/// Truncation is idempotent and masks exactly.
#[test]
fn width_truncate_idempotent() {
    for v in interesting_u64() {
        for w in Width::ALL {
            let t = w.truncate(v);
            assert_eq!(w.truncate(t), t);
            assert_eq!(t, v & w.mask());
        }
    }
}

/// Sign extension of a truncated value round-trips.
#[test]
fn sext_roundtrip() {
    for v in interesting_u64() {
        for w in Width::ALL {
            let t = w.truncate(v);
            let s = w.sext_to_64(t);
            assert_eq!(w.truncate(s as u64), t, "width {w} v {v:#x}");
        }
    }
}

/// Negation, swapping and evaluation of condition codes agree on all
/// operand pairs drawn from the boundary set, at all widths.
#[test]
fn cc_laws() {
    let ccs = [
        Cc::Eq,
        Cc::Ne,
        Cc::Ult,
        Cc::Ule,
        Cc::Ugt,
        Cc::Uge,
        Cc::Slt,
        Cc::Sle,
        Cc::Sgt,
        Cc::Sge,
    ];
    let vs = [
        0u64,
        1,
        0x7F,
        0x80,
        0xFF,
        0x7FFF,
        0x8000,
        0xFFFF,
        0x7FFF_FFFF,
        0x8000_0000,
        0xFFFF_FFFF,
        0x7FFF_FFFF_FFFF_FFFF,
        0x8000_0000_0000_0000,
        u64::MAX,
        0x1234_5678_9ABC_DEF0,
    ];
    for a in vs {
        for b in vs {
            for w in Width::ALL {
                for cc in ccs {
                    assert_eq!(cc.eval(w, a, b), !cc.negated().eval(w, a, b));
                    assert_eq!(cc.eval(w, a, b), cc.swapped().eval(w, b, a));
                }
            }
        }
    }
}

/// On every branching-chain shape up to 7 splits (each split either a
/// straight edge or a two-way diamond): the entry dominates every reachable
/// block, dominance is reflexive, and liveness live-in of the entry is
/// empty for a function whose values are all locally defined.
#[test]
fn dominator_and_liveness_sanity() {
    for len in 1usize..8 {
        for pattern in 0u32..(1 << len) {
            let splits: Vec<bool> = (0..len).map(|i| pattern & (1 << i) != 0).collect();
            let mut fb = FunctionBuilder::new("p", vec![Width::W32], Some(Width::W32));
            let x = fb.param(0);
            let mut acc = fb.iconst(Width::W32, 1);
            let mut blocks = vec![fb.current_block()];
            for (i, two_way) in splits.iter().enumerate() {
                let nxt = fb.new_block();
                if *two_way {
                    let alt = fb.new_block();
                    let c = fb.icmp(Cc::Ult, Width::W32, acc, x);
                    fb.cond_br(c, nxt, alt);
                    fb.switch_to(alt);
                    fb.br(nxt);
                    blocks.push(alt);
                } else {
                    fb.br(nxt);
                }
                fb.switch_to(nxt);
                blocks.push(nxt);
                let k = fb.iconst(Width::W32, i as u64 + 1);
                acc = fb.bin(BinOp::Add, Width::W32, k, k);
            }
            fb.ret(Some(acc));
            let f = fb.finish();
            sir::verify::verify_function(&f).unwrap();
            let dt = DomTree::compute(&f);
            for b in f.block_ids() {
                if dt.is_reachable(b) {
                    assert!(dt.dominates(f.entry, b));
                    assert!(dt.dominates(b, b));
                }
            }
            let lv = Liveness::compute(&f);
            assert!(lv.live_in_of(f.entry).is_empty());
        }
    }
}
