//! Block-level liveness analysis.
//!
//! Liveness respects SIR/SMIR speculative-region semantics: every block of a
//! region has an implicit edge to the region's handler (equation 2 of
//! §3.1.3), so anything live into a handler stays live throughout its region.
//! φ-node operands are treated as uses at the end of the corresponding
//! predecessor, in the usual SSA fashion.

use crate::func::Function;
use crate::inst::Inst;
use crate::types::{BlockId, ValueId};
use std::collections::HashSet;

/// Per-block live-in/live-out sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    pub live_in: Vec<HashSet<ValueId>>,
    pub live_out: Vec<HashSet<ValueId>>,
}

impl Liveness {
    /// Computes liveness for `f` by iterating a backward dataflow to a
    /// fixpoint over branch + misspeculation edges.
    pub fn compute(f: &Function) -> Liveness {
        let n = f.blocks.len();
        // Per-block upward-exposed uses (excluding φ operands) and defs.
        let mut uevar: Vec<HashSet<ValueId>> = vec![HashSet::new(); n];
        let mut defs: Vec<HashSet<ValueId>> = vec![HashSet::new(); n];
        for b in f.block_ids() {
            let bi = b.index();
            for &v in &f.block(b).insts {
                let inst = f.inst(v);
                if !inst.is_phi() {
                    for op in inst.operands() {
                        if !defs[bi].contains(&op) {
                            uevar[bi].insert(op);
                        }
                    }
                }
                if inst.result_width().is_some() {
                    defs[bi].insert(v);
                }
            }
            for op in f.block(b).term.operands() {
                if !defs[bi].contains(&op) {
                    uevar[bi].insert(op);
                }
            }
        }
        // φ contributions: value v flowing along edge p→b is live-out of p.
        let mut phi_uses_out: Vec<HashSet<ValueId>> = vec![HashSet::new(); n];
        for b in f.block_ids() {
            for &v in &f.block(b).insts {
                if let Inst::Phi { incomings, .. } = f.inst(v) {
                    for (p, val) in incomings {
                        phi_uses_out[p.index()].insert(*val);
                    }
                } else {
                    break;
                }
            }
        }
        let mut live_in: Vec<HashSet<ValueId>> = vec![HashSet::new(); n];
        let mut live_out: Vec<HashSet<ValueId>> = vec![HashSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            // Backward iteration converges faster in post-order; simple
            // reverse block order is adequate for our sizes.
            for bi in (0..n).rev() {
                let b = BlockId(bi as u32);
                let mut out: HashSet<ValueId> = phi_uses_out[bi].clone();
                for s in f.spec_succs(b) {
                    for &v in &live_in[s.index()] {
                        out.insert(v);
                    }
                }
                let mut inn: HashSet<ValueId> = uevar[bi].clone();
                for &v in &out {
                    if !defs[bi].contains(&v) {
                        inn.insert(v);
                    }
                }
                if out != live_out[bi] {
                    live_out[bi] = out;
                    changed = true;
                }
                if inn != live_in[bi] {
                    live_in[bi] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Values live on entry to `b`.
    pub fn live_in_of(&self, b: BlockId) -> &HashSet<ValueId> {
        &self.live_in[b.index()]
    }

    /// Values live on exit from `b`.
    pub fn live_out_of(&self, b: BlockId) -> &HashSet<ValueId> {
        &self.live_out[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Cc, Terminator};
    use crate::types::Width;

    #[test]
    fn straightline_liveness() {
        let mut b = FunctionBuilder::new("f", vec![Width::W32, Width::W32], Some(Width::W32));
        let x = b.param(0);
        let y = b.param(1);
        let s = b.bin(BinOp::Add, Width::W32, x, y);
        b.ret(Some(s));
        let f = b.finish();
        let lv = Liveness::compute(&f);
        // Params are defined in entry, so nothing is live-in.
        assert!(lv.live_in_of(f.entry).is_empty());
        assert!(lv.live_out_of(f.entry).is_empty());
    }

    #[test]
    fn loop_carries_liveness() {
        // entry -> body(phi x) -> body | exit; exit returns x.
        let mut b = FunctionBuilder::new("f", vec![Width::W32], Some(Width::W32));
        let n = b.param(0);
        let zero = b.iconst(Width::W32, 0);
        let body = b.new_block();
        let exit = b.new_block();
        b.br(body);
        b.switch_to(body);
        let x = b.phi(Width::W32, vec![]);
        let one = b.iconst(Width::W32, 1);
        let x1 = b.bin(BinOp::Add, Width::W32, x, one);
        let c = b.icmp(Cc::Ult, Width::W32, x1, n);
        b.cond_br(c, body, exit);
        let entry = b.func().entry;
        b.set_phi_incomings(x, vec![(entry, zero), (body, x1)]);
        b.switch_to(exit);
        b.ret(Some(x1));
        let f = b.finish();
        let lv = Liveness::compute(&f);
        // n is live into the loop body (used by the compare every iteration).
        assert!(lv.live_in_of(body).contains(&n));
        // x1 is live out of body (φ use on backedge + use in exit).
        assert!(lv.live_out_of(body).contains(&x1));
        // zero flows into body's φ, so it is live out of entry…
        assert!(lv.live_out_of(entry).contains(&zero));
        // …but not live into body (φ semantics).
        assert!(!lv.live_in_of(body).contains(&zero));
    }

    #[test]
    fn handler_uses_keep_values_live_through_region() {
        // entry defines k; region block r uses nothing; handler uses k.
        // k must be live-out of r because of the misspeculation edge.
        let mut f = crate::func::Function::new("f", vec![Width::W32], Some(Width::W32));
        let k = f.param_value(0);
        let r = f.add_block();
        let h = f.add_block();
        let exit = f.add_block();
        f.block_mut(f.entry).term = Terminator::Br(r);
        f.block_mut(r).term = Terminator::Br(exit);
        f.block_mut(h).term = Terminator::Ret(Some(k));
        let zero = f.append_inst(
            exit,
            crate::inst::Inst::Const {
                width: Width::W32,
                value: 0,
            },
        );
        f.block_mut(exit).term = Terminator::Ret(Some(zero));
        f.add_region(vec![r], h);
        let lv = Liveness::compute(&f);
        assert!(lv.live_in_of(r).contains(&k));
        assert!(lv.live_in_of(h).contains(&k));
    }
}
