//! Human-readable printing of SIR, loosely mirroring LLVM's textual IR with
//! the paper's `!speculative` and `handler = …` annotations.

use crate::func::Function;
use crate::inst::{Inst, Terminator};
use crate::module::Module;
use crate::types::ValueId;
use std::fmt::Write;

/// Renders a whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    for g in &m.globals {
        let _ = writeln!(
            out,
            "global {} : [{} x i8] align {}{}",
            g.name,
            g.size,
            g.align,
            if g.init.is_empty() { "" } else { " (init)" }
        );
    }
    for f in &m.funcs {
        out.push_str(&print_function(f));
        out.push('\n');
    }
    out
}

/// Renders a single function.
pub fn print_function(f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .enumerate()
        .map(|(i, w)| format!("{w} {}", f.param_value(i)))
        .collect();
    let ret = f.ret.map_or("void".to_string(), |w| w.to_string());
    let _ = writeln!(out, "func {} ({}) -> {} {{", f.name, params.join(", "), ret);
    for b in f.block_ids() {
        let blk = f.block(b);
        let mut annot = Vec::new();
        if let Some(r) = blk.region {
            annot.push(format!("in {r}"));
            let reg = &f.regions[r.index()];
            if reg.entry() == b {
                annot.push(format!("handler = {}", reg.handler));
            }
        }
        if let Some(r) = blk.handler_for {
            annot.push(format!("handles {r}"));
        }
        let suffix = if annot.is_empty() {
            String::new()
        } else {
            format!("  ; {}", annot.join(", "))
        };
        let _ = writeln!(out, "{b}:{suffix}");
        for &v in &blk.insts {
            let _ = writeln!(out, "  {}", print_inst(f, v));
        }
        let _ = writeln!(out, "  {}", print_term(&blk.term));
    }
    out.push_str("}\n");
    out
}

fn print_inst(f: &Function, v: ValueId) -> String {
    let spec = |s: bool| if s { " !speculative" } else { "" };
    match f.inst(v) {
        Inst::Param { index, width } => format!("{v} = param {index} : {width}"),
        Inst::Const { width, value } => format!("{v} = const {width} {value}"),
        Inst::GlobalAddr { global } => format!("{v} = globaladdr {global}"),
        Inst::Alloca { size } => format!("{v} = alloca {size}"),
        Inst::Bin {
            op,
            width,
            lhs,
            rhs,
            speculative,
        } => format!("{v} = {op} {width} {lhs}, {rhs}{}", spec(*speculative)),
        Inst::Icmp {
            cc,
            width,
            lhs,
            rhs,
        } => format!("{v} = cmp {cc} {width} {lhs}, {rhs}"),
        Inst::Zext { to, arg } => format!("{v} = zext {arg} to {to}"),
        Inst::Sext { to, arg } => format!("{v} = sext {arg} to {to}"),
        Inst::Trunc {
            to,
            arg,
            speculative,
        } => format!("{v} = trunc {arg} to {to}{}", spec(*speculative)),
        Inst::Load {
            width,
            addr,
            volatile,
            speculative,
        } => format!(
            "{v} = load{} {width} [{addr}]{}",
            if *volatile { " volatile" } else { "" },
            spec(*speculative)
        ),
        Inst::Store {
            width,
            addr,
            value,
            volatile,
        } => format!(
            "store{} {width} [{addr}], {value}",
            if *volatile { " volatile" } else { "" }
        ),
        Inst::Select {
            width,
            cond,
            tval,
            fval,
        } => format!("{v} = select {width} {cond}, {tval}, {fval}"),
        Inst::Call { callee, args, ret } => {
            let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            let r = ret.map_or("void".to_string(), |w| w.to_string());
            format!("{v} = call {callee}({}) -> {r}", args.join(", "))
        }
        Inst::Phi { width, incomings } => {
            let inc: Vec<String> = incomings
                .iter()
                .map(|(b, val)| format!("[{val}, {b}]"))
                .collect();
            format!("{v} = phi {width} {}", inc.join(", "))
        }
        Inst::Output { value } => format!("output {value}"),
    }
}

fn print_term(t: &Terminator) -> String {
    match t {
        Terminator::Br(b) => format!("br {b}"),
        Terminator::CondBr {
            cond,
            if_true,
            if_false,
        } => format!("br {cond}, {if_true}, {if_false}"),
        Terminator::Ret(None) => "ret void".to_string(),
        Terminator::Ret(Some(v)) => format!("ret {v}"),
        Terminator::Unreachable => "unreachable".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::BinOp;
    use crate::types::Width;

    #[test]
    fn prints_add_function() {
        let mut b = FunctionBuilder::new("add1", vec![Width::W32], Some(Width::W32));
        let x = b.param(0);
        let one = b.iconst(Width::W32, 1);
        let y = b.bin(BinOp::Add, Width::W32, x, one);
        b.ret(Some(y));
        let s = print_function(&b.finish());
        assert!(s.contains("func add1"));
        assert!(s.contains("= add i32"));
        assert!(s.contains("ret %v2"));
    }

    #[test]
    fn speculative_annotation_shown() {
        let mut f = Function::new("s", vec![], Some(Width::W8));
        let r = f.add_block();
        let h = f.add_block();
        f.block_mut(f.entry).term = Terminator::Br(r);
        let one = f.append_inst(
            r,
            Inst::Const {
                width: Width::W8,
                value: 1,
            },
        );
        let v = f.append_inst(
            r,
            Inst::Bin {
                op: BinOp::Add,
                width: Width::W8,
                lhs: one,
                rhs: one,
                speculative: true,
            },
        );
        f.block_mut(r).term = Terminator::Ret(Some(v));
        f.block_mut(h).term = Terminator::Ret(Some(one));
        // Note: handler illegally uses region value for brevity — printer
        // does not verify.
        f.add_region(vec![r], h);
        let s = print_function(&f);
        assert!(s.contains("!speculative"));
        assert!(s.contains("handler = bb2"));
        assert!(s.contains("handles sr0"));
    }
}
