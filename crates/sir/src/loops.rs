//! Natural loop detection, used by the expander's unroller.

use crate::dom::DomTree;
use crate::func::Function;
use crate::types::BlockId;
use std::collections::HashSet;

/// A natural loop: a back edge `latch → header` plus the set of blocks that
/// can reach the latch without passing through the header.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    pub header: BlockId,
    pub latch: BlockId,
    /// All blocks in the loop, including header and latch.
    pub blocks: HashSet<BlockId>,
}

impl NaturalLoop {
    /// Number of blocks in the loop body.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Blocks outside the loop targeted by branches from inside (loop
    /// exits), in deterministic (sorted-block) order.
    pub fn exit_targets(&self, f: &Function) -> Vec<BlockId> {
        let mut blocks: Vec<BlockId> = self.blocks.iter().copied().collect();
        blocks.sort();
        let mut out = Vec::new();
        for &b in &blocks {
            for s in f.succs(b) {
                if !self.blocks.contains(&s) && !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out
    }
}

/// Finds all natural loops of `f` (one per back edge). Back edges through
/// speculative-region handler edges are ignored: loops are a branch-CFG
/// concept.
pub fn find_loops(f: &Function) -> Vec<NaturalLoop> {
    let dt = DomTree::compute(f);
    let mut loops = Vec::new();
    for b in f.block_ids() {
        if !dt.is_reachable(b) {
            continue;
        }
        for s in f.succs(b) {
            if dt.dominates(s, b) {
                loops.push(collect_loop(f, s, b));
            }
        }
    }
    loops
}

fn collect_loop(f: &Function, header: BlockId, latch: BlockId) -> NaturalLoop {
    let preds = f.branch_preds();
    let mut blocks: HashSet<BlockId> = HashSet::new();
    blocks.insert(header);
    let mut work = vec![latch];
    while let Some(b) = work.pop() {
        if blocks.insert(b) {
            for &p in &preds[b.index()] {
                work.push(p);
            }
        }
    }
    NaturalLoop {
        header,
        latch,
        blocks,
    }
}

/// Innermost-first ordering: loops sorted by ascending block count, so that
/// an unroller processing in order transforms inner loops before the outer
/// loops that contain them.
pub fn loops_innermost_first(f: &Function) -> Vec<NaturalLoop> {
    let mut ls = find_loops(f);
    ls.sort_by_key(|l| l.blocks.len());
    ls
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Cc};
    use crate::types::Width;

    fn counting_loop() -> (Function, BlockId) {
        let mut b = FunctionBuilder::new("f", vec![Width::W32], Some(Width::W32));
        let n = b.param(0);
        let zero = b.iconst(Width::W32, 0);
        let body = b.new_block();
        let exit = b.new_block();
        b.br(body);
        b.switch_to(body);
        let x = b.phi(Width::W32, vec![]);
        let one = b.iconst(Width::W32, 1);
        let x1 = b.bin(BinOp::Add, Width::W32, x, one);
        let c = b.icmp(Cc::Ult, Width::W32, x1, n);
        b.cond_br(c, body, exit);
        let entry = b.func().entry;
        b.set_phi_incomings(x, vec![(entry, zero), (body, x1)]);
        b.switch_to(exit);
        b.ret(Some(x1));
        (b.finish(), body)
    }

    #[test]
    fn finds_single_block_loop() {
        let (f, body) = counting_loop();
        let loops = find_loops(&f);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, body);
        assert_eq!(loops[0].latch, body);
        assert_eq!(loops[0].blocks.len(), 1);
    }

    #[test]
    fn exit_targets_of_loop() {
        let (f, _) = counting_loop();
        let loops = find_loops(&f);
        let exits = loops[0].exit_targets(&f);
        assert_eq!(exits.len(), 1);
    }

    #[test]
    fn no_loops_in_straightline() {
        let mut b = FunctionBuilder::new("g", vec![], None);
        b.ret(None);
        let f = b.finish();
        assert!(find_loops(&f).is_empty());
    }
}
