//! Core identifier and width types shared across the IR.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index of this id.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            fn from(i: usize) -> Self {
                $name(i as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies an SSA value (one per defining instruction) within a function.
    ValueId,
    "%v"
);
id_type!(
    /// Identifies a basic block within a function.
    BlockId,
    "bb"
);
id_type!(
    /// Identifies a function within a module.
    FuncId,
    "@f"
);
id_type!(
    /// Identifies a global (byte array) within a module.
    GlobalId,
    "@g"
);
id_type!(
    /// Identifies a speculative region within a function (§3.1.1).
    RegionId,
    "sr"
);

/// The bitwidth of an integer value.
///
/// SIR is an integer-only IR (the paper's transformation targets integer
/// variables; see DESIGN.md for the FFT fixed-point substitution). `W1` is
/// the boolean width produced by comparisons.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Width {
    /// 1-bit boolean.
    W1,
    /// 8 bits — the size of a register slice in the BITSPEC ISA.
    W8,
    /// 16 bits.
    W16,
    /// 32 bits — the native machine word.
    W32,
    /// 64 bits — legalized to register pairs by the back-end.
    W64,
}

impl Width {
    /// Number of bits.
    pub fn bits(self) -> u32 {
        match self {
            Width::W1 => 1,
            Width::W8 => 8,
            Width::W16 => 16,
            Width::W32 => 32,
            Width::W64 => 64,
        }
    }

    /// Number of bytes occupied in memory (W1 occupies one byte).
    pub fn bytes(self) -> u32 {
        match self {
            Width::W1 | Width::W8 => 1,
            Width::W16 => 2,
            Width::W32 => 4,
            Width::W64 => 8,
        }
    }

    /// Bitmask selecting the valid bits of a value of this width.
    pub fn mask(self) -> u64 {
        match self {
            Width::W1 => 1,
            Width::W8 => 0xFF,
            Width::W16 => 0xFFFF,
            Width::W32 => 0xFFFF_FFFF,
            Width::W64 => u64::MAX,
        }
    }

    /// Truncates `v` to this width (zeroing the upper bits).
    pub fn truncate(self, v: u64) -> u64 {
        v & self.mask()
    }

    /// Sign-extends the `self`-wide low bits of `v` to 64 bits.
    pub fn sext_to_64(self, v: u64) -> i64 {
        let b = self.bits();
        if b == 64 {
            v as i64
        } else {
            let shift = 64 - b;
            ((v << shift) as i64) >> shift
        }
    }

    /// The smallest [`Width`] that can hold `bits` bits, if any.
    pub fn for_bits(bits: u32) -> Option<Width> {
        match bits {
            0 | 1 => Some(Width::W1),
            2..=8 => Some(Width::W8),
            9..=16 => Some(Width::W16),
            17..=32 => Some(Width::W32),
            33..=64 => Some(Width::W64),
            _ => None,
        }
    }

    /// All widths, narrowest first.
    pub const ALL: [Width; 5] = [Width::W1, Width::W8, Width::W16, Width::W32, Width::W64];
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.bits())
    }
}

/// The number of bits required to store the unsigned value `a`:
/// `RequiredBits(a) = floor(lg(a) + 1)` per §2.1 (and 1 for `a == 0`).
pub fn required_bits(a: u64) -> u32 {
    (64 - a.leading_zeros()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_bits_and_masks() {
        assert_eq!(Width::W1.bits(), 1);
        assert_eq!(Width::W8.mask(), 0xFF);
        assert_eq!(Width::W16.truncate(0x1_2345), 0x2345);
        assert_eq!(Width::W64.mask(), u64::MAX);
        assert_eq!(Width::W32.bytes(), 4);
    }

    #[test]
    fn sign_extension() {
        assert_eq!(Width::W8.sext_to_64(0xFF), -1);
        assert_eq!(Width::W8.sext_to_64(0x7F), 127);
        assert_eq!(Width::W16.sext_to_64(0x8000), -32768);
        assert_eq!(Width::W64.sext_to_64(u64::MAX), -1);
        assert_eq!(Width::W1.sext_to_64(1), -1);
    }

    #[test]
    fn required_bits_matches_definition() {
        assert_eq!(required_bits(0), 1);
        assert_eq!(required_bits(1), 1);
        assert_eq!(required_bits(2), 2);
        assert_eq!(required_bits(255), 8);
        assert_eq!(required_bits(256), 9);
        assert_eq!(required_bits(u64::MAX), 64);
    }

    #[test]
    fn width_for_bits() {
        assert_eq!(Width::for_bits(1), Some(Width::W1));
        assert_eq!(Width::for_bits(8), Some(Width::W8));
        assert_eq!(Width::for_bits(9), Some(Width::W16));
        assert_eq!(Width::for_bits(33), Some(Width::W64));
        assert_eq!(Width::for_bits(65), None);
    }

    #[test]
    fn id_display() {
        assert_eq!(ValueId(3).to_string(), "%v3");
        assert_eq!(BlockId(0).to_string(), "bb0");
        assert_eq!(RegionId(1).to_string(), "sr1");
    }
}
