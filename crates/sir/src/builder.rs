//! Ergonomic construction of SIR functions.

use crate::func::Function;
use crate::inst::{BinOp, Cc, Inst, Terminator};
use crate::types::{BlockId, FuncId, GlobalId, ValueId, Width};

/// A cursor-style builder over a [`Function`].
///
/// The builder keeps an insertion block; instruction helpers append to it.
/// Terminator helpers seal the current block.
///
/// ```
/// use sir::builder::FunctionBuilder;
/// use sir::{BinOp, Width};
///
/// let mut b = FunctionBuilder::new("twice", vec![Width::W32], Some(Width::W32));
/// let x = b.param(0);
/// let y = b.bin(BinOp::Add, Width::W32, x, x);
/// b.ret(Some(y));
/// let f = b.finish();
/// assert_eq!(f.name, "twice");
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    cur: BlockId,
}

impl FunctionBuilder {
    /// Creates a builder positioned at the entry block.
    pub fn new(name: impl Into<String>, params: Vec<Width>, ret: Option<Width>) -> Self {
        let func = Function::new(name, params, ret);
        let cur = func.entry;
        FunctionBuilder { func, cur }
    }

    /// Consumes the builder, yielding the function.
    pub fn finish(self) -> Function {
        self.func
    }

    /// The function under construction (read access for tests).
    pub fn func(&self) -> &Function {
        &self.func
    }

    /// Current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Creates a new (unsealed) block.
    pub fn new_block(&mut self) -> BlockId {
        self.func.add_block()
    }

    /// Moves the insertion point to `b`.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    /// Value id of parameter `i`.
    pub fn param(&self, i: usize) -> ValueId {
        self.func.param_value(i)
    }

    fn push(&mut self, inst: Inst) -> ValueId {
        self.func.append_inst(self.cur, inst)
    }

    /// Integer constant.
    pub fn iconst(&mut self, width: Width, value: u64) -> ValueId {
        self.push(Inst::Const {
            width,
            value: width.truncate(value),
        })
    }

    /// Address of global `g`.
    pub fn global_addr(&mut self, g: GlobalId) -> ValueId {
        self.push(Inst::GlobalAddr { global: g })
    }

    /// Stack allocation of `size` bytes.
    pub fn alloca(&mut self, size: u32) -> ValueId {
        self.push(Inst::Alloca { size })
    }

    /// Binary operation.
    pub fn bin(&mut self, op: BinOp, width: Width, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.push(Inst::Bin {
            op,
            width,
            lhs,
            rhs,
            speculative: false,
        })
    }

    /// Comparison (yields a `W1`).
    pub fn icmp(&mut self, cc: Cc, width: Width, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.push(Inst::Icmp {
            cc,
            width,
            lhs,
            rhs,
        })
    }

    /// Zero-extension.
    pub fn zext(&mut self, to: Width, arg: ValueId) -> ValueId {
        self.push(Inst::Zext { to, arg })
    }

    /// Sign-extension.
    pub fn sext(&mut self, to: Width, arg: ValueId) -> ValueId {
        self.push(Inst::Sext { to, arg })
    }

    /// Truncation.
    pub fn trunc(&mut self, to: Width, arg: ValueId) -> ValueId {
        self.push(Inst::Trunc {
            to,
            arg,
            speculative: false,
        })
    }

    /// Memory load.
    pub fn load(&mut self, width: Width, addr: ValueId) -> ValueId {
        self.push(Inst::Load {
            width,
            addr,
            volatile: false,
            speculative: false,
        })
    }

    /// Volatile memory load (non-idempotent).
    pub fn load_volatile(&mut self, width: Width, addr: ValueId) -> ValueId {
        self.push(Inst::Load {
            width,
            addr,
            volatile: true,
            speculative: false,
        })
    }

    /// Memory store.
    pub fn store(&mut self, width: Width, addr: ValueId, value: ValueId) {
        self.push(Inst::Store {
            width,
            addr,
            value,
            volatile: false,
        });
    }

    /// Select (`cond ? t : f`).
    pub fn select(&mut self, width: Width, cond: ValueId, t: ValueId, f: ValueId) -> ValueId {
        self.push(Inst::Select {
            width,
            cond,
            tval: t,
            fval: f,
        })
    }

    /// Direct call.
    pub fn call(&mut self, callee: FuncId, args: Vec<ValueId>, ret: Option<Width>) -> ValueId {
        self.push(Inst::Call { callee, args, ret })
    }

    /// φ-node. Must be created before non-φ instructions in the block; the
    /// verifier enforces ordering.
    pub fn phi(&mut self, width: Width, incomings: Vec<(BlockId, ValueId)>) -> ValueId {
        let v = self.func.add_inst(Inst::Phi { width, incomings });
        // Insert after existing φs, before other instructions.
        let blk = self.func.block_mut(self.cur);
        let at = blk.insts.len(); // appended below after computing position
        let _ = at;
        let pos = {
            let f = &self.func;
            f.block(self.cur)
                .insts
                .iter()
                .take_while(|x| f.inst(**x).is_phi())
                .count()
        };
        self.func.block_mut(self.cur).insts.insert(pos, v);
        v
    }

    /// Replaces the incoming edges of a previously created φ-node.
    ///
    /// # Panics
    /// Panics if `phi` is not a φ-node.
    pub fn set_phi_incomings(&mut self, phi: ValueId, incomings: Vec<(BlockId, ValueId)>) {
        match self.func.inst_mut(phi) {
            Inst::Phi { incomings: inc, .. } => *inc = incomings,
            other => panic!("{phi} is not a φ-node: {other:?}"),
        }
    }

    /// Mutable access to the function under construction, for surgery that
    /// the builder API does not cover.
    pub fn func_mut(&mut self) -> &mut Function {
        &mut self.func
    }

    /// Emits a value to the observable output stream.
    pub fn output(&mut self, value: ValueId) {
        self.push(Inst::Output { value });
    }

    /// Seals the current block with an unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.func.block_mut(self.cur).term = Terminator::Br(target);
    }

    /// Seals the current block with a conditional branch.
    pub fn cond_br(&mut self, cond: ValueId, if_true: BlockId, if_false: BlockId) {
        self.func.block_mut(self.cur).term = Terminator::CondBr {
            cond,
            if_true,
            if_false,
        };
    }

    /// Seals the current block with a return.
    pub fn ret(&mut self, value: Option<ValueId>) {
        self.func.block_mut(self.cur).term = Terminator::Ret(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_loop_with_phi() {
        // The paper's running example: x = 0; do { x += 1 } while (x <= 255)
        let mut b = FunctionBuilder::new("count", vec![], Some(Width::W32));
        let zero = b.iconst(Width::W32, 0);
        let body = b.new_block();
        let exit = b.new_block();
        b.br(body);
        b.switch_to(body);
        let x0 = b.phi(Width::W32, vec![]);
        let one = b.iconst(Width::W32, 1);
        let x1 = b.bin(BinOp::Add, Width::W32, x0, one);
        let limit = b.iconst(Width::W32, 255);
        let c = b.icmp(Cc::Ule, Width::W32, x1, limit);
        b.cond_br(c, body, exit);
        // patch φ incomings
        let entry = b.func().entry;
        b.set_phi_incomings(x0, vec![(entry, zero), (body, x1)]);
        b.switch_to(exit);
        b.ret(Some(x1));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 3);
        assert!(f.inst(x0).is_phi());
        // φ is first in the body block even though created after iconst calls
        assert_eq!(f.block(BlockId(1)).insts[0], x0);
    }

    #[test]
    fn phis_stay_grouped_at_head() {
        let mut b = FunctionBuilder::new("g", vec![], None);
        let blk = b.new_block();
        b.br(blk);
        b.switch_to(blk);
        let c = b.iconst(Width::W8, 1);
        let p1 = b.phi(Width::W8, vec![]);
        let p2 = b.phi(Width::W8, vec![]);
        b.ret(None);
        let f = b.finish();
        let insts = &f.block(blk).insts;
        assert_eq!(insts[0], p1);
        assert_eq!(insts[1], p2);
        assert_eq!(insts[2], c);
    }
}
