//! Pass infrastructure: named passes, per-pass instrumentation, and a
//! tracer shared by every pipeline layer.
//!
//! The Figure 4 pipeline used to be a chain of hand-called free functions
//! with `verify_each` threaded as a raw bool through half a dozen
//! signatures. This module is the common substrate of the replacement:
//!
//! * [`SirPass`] — a named transformation over a [`Module`]. Adapters in
//!   `opt` wrap the expander, simplify, DCE and the squeezer; the
//!   back-end records its (MIR-level) passes through the same tracer.
//! * [`Tracer`] — owns the cross-cutting concerns: per-pass wall time,
//!   IR-delta counters ([`IrStats`] before → after), post-pass
//!   verification per [`TracePolicy`], `BITSPEC_PRINT_AFTER`-style
//!   textual dumps, post-pass IR fingerprints (the fuzzer's divergence
//!   probe), and dump-on-failure artifacts when a verifier rejects.
//! * [`PassTrace`] — one record per executed pass; the `core::pipeline`
//!   layer aggregates these into a per-build JSON report.
//!
//! Fingerprints are structural FNV-1a hashes of the IR ([`ir_fingerprint`]),
//! not of its printed form, so they cost one linear walk and are collected
//! unconditionally — which keeps stage-cached traces comparable no matter
//! which instrumentation options the cache-filling build used.

use crate::module::Module;
use crate::print;
use crate::verify::{self, VerifyError};
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// Coarse IR size counters, recorded before and after every pass.
///
/// The same struct serves SIR and MIR: `funcs`/`blocks`/`insts` mean the
/// obvious thing in both, `regions` counts speculative regions, and
/// `slices` counts 8-bit (slice-class) values — zero until the squeezer
/// narrows something, byte-class vregs in the back-end.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IrStats {
    pub funcs: u32,
    pub blocks: u32,
    pub insts: u32,
    pub regions: u32,
    pub slices: u32,
}

impl IrStats {
    /// Counters for a SIR module. `insts` counts *placed* instructions
    /// (arena slots may be dead), `slices` counts placed W8 values.
    pub fn of_module(m: &Module) -> IrStats {
        let mut s = IrStats {
            funcs: m.funcs.len() as u32,
            ..IrStats::default()
        };
        for f in &m.funcs {
            s.blocks += f.blocks.len() as u32;
            s.regions += f.regions.len() as u32;
            for b in &f.blocks {
                s.insts += b.insts.len() as u32;
                s.slices += b
                    .insts
                    .iter()
                    .filter(|v| f.value_width(**v) == Some(crate::Width::W8))
                    .count() as u32;
            }
        }
        s
    }
}

/// One executed (or cache-replayed) pass.
#[derive(Debug, Clone)]
pub struct PassTrace {
    /// Registered pass name; sub-phases use a dotted suffix
    /// (`squeeze.prepare`).
    pub name: String,
    /// Wall-clock time of the pass body. Cache-replayed entries keep the
    /// wall time of the run that computed them.
    pub wall_ns: u64,
    pub before: IrStats,
    pub after: IrStats,
    /// Structural fingerprint of the IR *after* the pass (see
    /// [`ir_fingerprint`]); `None` for entries with no fingerprintable
    /// artifact (analyses, verification-only entries).
    pub fingerprint: Option<u64>,
    /// Served from a stage cache (the pass did not re-run in this build).
    pub cached: bool,
    /// Post-pass verification ran and passed.
    pub verified: bool,
    /// `BITSPEC_PRINT_AFTER` capture of the post-pass IR, when requested.
    pub dump: Option<String>,
}

impl PassTrace {
    /// A bare entry with `name` and wall time; the builder-style helpers
    /// fill in the rest.
    pub fn new(name: impl Into<String>, wall_ns: u64) -> PassTrace {
        PassTrace {
            name: name.into(),
            wall_ns,
            before: IrStats::default(),
            after: IrStats::default(),
            fingerprint: None,
            cached: false,
            verified: false,
            dump: None,
        }
    }

    pub fn stats(mut self, before: IrStats, after: IrStats) -> PassTrace {
        self.before = before;
        self.after = after;
        self
    }

    pub fn fingerprinted(mut self, fp: u64) -> PassTrace {
        self.fingerprint = Some(fp);
        self
    }

    pub fn verified(mut self, ok: bool) -> PassTrace {
        self.verified = ok;
        self
    }
}

/// What `BITSPEC_PRINT_AFTER` selects.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum PrintAfter {
    /// No dumps (the default).
    #[default]
    None,
    /// Dump after every pass.
    All,
    /// Dump after the named pass (sub-phases match their parent prefix).
    Pass(String),
}

impl PrintAfter {
    /// Parses the `BITSPEC_PRINT_AFTER` value: `all`, empty (= all), or a
    /// pass name.
    pub fn parse(v: &str) -> PrintAfter {
        match v {
            "" | "all" | "ALL" => PrintAfter::All,
            name => PrintAfter::Pass(name.to_string()),
        }
    }

    /// Whether a pass named `name` should be dumped.
    pub fn matches(&self, name: &str) -> bool {
        match self {
            PrintAfter::None => false,
            PrintAfter::All => true,
            PrintAfter::Pass(p) => {
                name == p
                    || name
                        .strip_prefix(p.as_str())
                        .is_some_and(|r| r.starts_with('.'))
            }
        }
    }
}

/// The manager-owned policy that replaces the `verify_each` bool formerly
/// threaded through every pipeline signature.
#[derive(Debug, Clone, Default)]
pub struct TracePolicy {
    /// Run the appropriate verifier after every pass (SIR verifier for
    /// middle-end passes, SMIR/layout verifiers in the back-end) and fail
    /// the build on rejection.
    pub verify_each: bool,
    /// Dump post-pass IR for matching passes (kept in the trace; also
    /// echoed to stderr when `echo_dumps`).
    pub print_after: PrintAfter,
    /// Echo dumps and dump-on-failure artifacts to stderr as they happen
    /// (CLI use; tests read them from the trace instead).
    pub echo_dumps: bool,
}

impl TracePolicy {
    /// The default policy for a build with the given verification setting.
    pub fn verify(verify_each: bool) -> TracePolicy {
        TracePolicy {
            verify_each,
            ..TracePolicy::default()
        }
    }
}

/// A named transformation over a SIR module, run under a [`Tracer`].
///
/// Adapters in `opt` (and `sir` itself) implement this for every
/// middle-end transformation; [`Tracer::run_sir`] wraps `run` with the
/// instrumentation and verification the manager owns. `run` may record
/// dotted sub-phase entries through the tracer it is handed.
pub trait SirPass {
    /// The registered pass name (stable; golden-order tests key on it).
    fn name(&self) -> &'static str;
    /// Applies the transformation.
    fn run(&mut self, m: &mut Module, tr: &mut Tracer);
}

/// FNV-1a as a [`Hasher`], so `#[derive(Hash)]` types feed a stable,
/// process-independent fingerprint (the std `DefaultHasher` is randomly
/// keyed per process and useless for cross-run comparison).
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Structural fingerprint of a module: every global, function signature,
/// block (placed instructions + terminator) and region feeds one FNV-1a
/// stream. Two modules fingerprint equal iff they are structurally
/// identical, so per-pass fingerprints pin down the first pass at which
/// two builds diverge — the fuzzer's triage probe, and the direct test
/// that instrumentation keeps builds bit-identical.
pub fn ir_fingerprint(m: &Module) -> u64 {
    let mut h = FnvHasher::default();
    m.name.hash(&mut h);
    (m.globals.len() as u64).hash(&mut h);
    for g in &m.globals {
        g.name.hash(&mut h);
        g.size.hash(&mut h);
        g.align.hash(&mut h);
        g.init.hash(&mut h);
    }
    (m.funcs.len() as u64).hash(&mut h);
    for f in &m.funcs {
        hash_function(f, &mut h);
    }
    h.finish()
}

/// Structural fingerprint of a single function: the per-function slice of
/// [`ir_fingerprint`]. The function-level codegen cache keys on this. The
/// name participates (renaming a function invalidates it), and call-site
/// operands carry symbolic `FuncId`s, so reordering functions invalidates
/// exactly the callers whose callee ids changed — never silently hits.
pub fn fn_fingerprint(f: &crate::Function) -> u64 {
    let mut h = FnvHasher::default();
    hash_function(f, &mut h);
    h.finish()
}

fn hash_function(f: &crate::Function, h: &mut FnvHasher) {
    f.name.hash(h);
    f.params.hash(h);
    f.ret.hash(h);
    f.entry.hash(h);
    (f.blocks.len() as u64).hash(h);
    for b in &f.blocks {
        // Hash placed instructions by content, not arena id, but keep
        // the ids too: operand references are ids, so renumbering is a
        // structural difference.
        (b.insts.len() as u64).hash(h);
        for &v in &b.insts {
            v.hash(h);
            f.inst(v).hash(h);
        }
        b.term.hash(h);
        b.region.hash(h);
        b.handler_for.hash(h);
    }
    (f.regions.len() as u64).hash(h);
    for r in &f.regions {
        r.blocks.hash(h);
        r.handler.hash(h);
    }
}

/// Collects [`PassTrace`] records and applies the [`TracePolicy`] around
/// every pass. One tracer accumulates the whole build; stages replay
/// their cached traces into it.
#[derive(Debug, Clone)]
pub struct Tracer {
    pub policy: TracePolicy,
    entries: Vec<PassTrace>,
}

impl Tracer {
    pub fn new(policy: TracePolicy) -> Tracer {
        Tracer {
            policy,
            entries: Vec::new(),
        }
    }

    /// Whether post-pass verification is on (cache keys and back-compat
    /// shims still need the raw bool).
    pub fn verify_each(&self) -> bool {
        self.policy.verify_each
    }

    /// Runs `pass` over `m` with full instrumentation: wall time,
    /// IR-delta stats, post-pass fingerprint, post-pass verification per
    /// policy (with a dump-on-failure artifact naming the failing pass and
    /// carrying the last-good IR), and print-after capture.
    ///
    /// Sub-phase entries the pass records end up *after* the parent entry.
    ///
    /// # Errors
    /// Returns the verifier's rejection when `verify_each` is set and the
    /// post-pass module is ill-formed.
    pub fn run_sir(&mut self, m: &mut Module, pass: &mut dyn SirPass) -> Result<(), VerifyError> {
        let name = pass.name();
        // Last-good IR for the failure artifact: render lazily — only when
        // a verifier actually rejects — from a pre-pass structural copy.
        // The copy itself is only taken when verification is armed.
        let last_good = self.policy.verify_each.then(|| m.clone());
        let before = IrStats::of_module(m);
        let start = self.entries.len();
        let t = Instant::now();
        pass.run(m, self);
        let wall = t.elapsed().as_nanos() as u64;
        let after = IrStats::of_module(m);
        let mut entry = PassTrace::new(name, wall)
            .stats(before, after)
            .fingerprinted(ir_fingerprint(m));
        if self.policy.verify_each {
            if let Err(e) = verify::verify_module(m) {
                let good = last_good
                    .as_ref()
                    .map(print::print_module)
                    .unwrap_or_default();
                if self.policy.echo_dumps {
                    eprintln!("; verification failed after pass `{name}`: {e}");
                    eprintln!("; last-good IR (before `{name}`):\n{good}");
                    eprintln!("; failing IR (after `{name}`):\n{}", print::print_module(m));
                }
                self.entries.push(entry.verified(false));
                return Err(e.in_pass(name, good));
            }
            entry.verified = true;
        }
        if self.policy.print_after.matches(name) {
            let dump = print::print_module(m);
            if self.policy.echo_dumps {
                eprintln!("; IR after {name}\n{dump}");
            }
            entry.dump = Some(dump);
        }
        self.entries.push(entry);
        // Parent before its sub-phases.
        self.entries[start..].rotate_right(1);
        Ok(())
    }

    /// Runs a named *check* (a verifier that inspects but never mutates —
    /// `bitlint`, SMIR verification, layout checks) and records a timed,
    /// verified-flagged entry for it.
    ///
    /// # Errors
    /// Propagates the check's rejection after recording the entry.
    pub fn run_check(
        &mut self,
        name: &str,
        check: impl FnOnce() -> Result<(), VerifyError>,
    ) -> Result<(), VerifyError> {
        let t = Instant::now();
        let r = check();
        let wall = t.elapsed().as_nanos() as u64;
        self.record(PassTrace::new(name, wall).verified(r.is_ok()));
        r
    }

    /// Records a pre-built entry (back-end passes, sub-phases, analyses).
    pub fn record(&mut self, entry: PassTrace) {
        if self.policy.echo_dumps {
            if let Some(d) = &entry.dump {
                eprintln!("; IR after {}\n{d}", entry.name);
            }
        }
        self.entries.push(entry);
    }

    /// Replays stage-cached entries; `cached` marks them as served from
    /// the cache (an entry already replayed-from-cache stays marked).
    pub fn replay(&mut self, entries: &[PassTrace], cached: bool) {
        for e in entries {
            self.entries.push(PassTrace {
                cached: e.cached || cached,
                ..e.clone()
            });
        }
    }

    /// The entries recorded so far.
    pub fn entries(&self) -> &[PassTrace] {
        &self.entries
    }

    /// Entries recorded from index `mark` on (for carving out one
    /// sub-compile, e.g. an empirical-gate leg).
    pub fn mark(&self) -> usize {
        self.entries.len()
    }

    /// Splits off every entry from `mark` on.
    pub fn take_from(&mut self, mark: usize) -> Vec<PassTrace> {
        self.entries.split_off(mark)
    }

    /// Consumes the tracer, returning the full trace.
    pub fn finish(self) -> Vec<PassTrace> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::{BinOp, Width};

    fn demo_module() -> Module {
        let mut m = Module::new("demo");
        let mut b = FunctionBuilder::new("add1", vec![Width::W32], Some(Width::W32));
        let x = b.param(0);
        let one = b.iconst(Width::W32, 1);
        let y = b.bin(BinOp::Add, Width::W32, x, one);
        b.ret(Some(y));
        m.add_function(b.finish());
        m
    }

    struct Nop;
    impl SirPass for Nop {
        fn name(&self) -> &'static str {
            "nop"
        }
        fn run(&mut self, _m: &mut Module, _tr: &mut Tracer) {}
    }

    #[test]
    fn stats_count_placed_insts() {
        let m = demo_module();
        let s = IrStats::of_module(&m);
        assert_eq!(s.funcs, 1);
        assert_eq!(s.blocks, 1);
        assert_eq!(s.insts, 3);
        assert_eq!(s.regions, 0);
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let a = demo_module();
        let b = demo_module();
        assert_eq!(ir_fingerprint(&a), ir_fingerprint(&b));
        let mut c = demo_module();
        c.funcs[0].insts[1] = crate::Inst::Const {
            width: Width::W32,
            value: 2,
        };
        assert_ne!(ir_fingerprint(&a), ir_fingerprint(&c));
    }

    #[test]
    fn nop_pass_records_verified_entry() {
        let mut m = demo_module();
        let mut tr = Tracer::new(TracePolicy::verify(true));
        tr.run_sir(&mut m, &mut Nop).unwrap();
        let e = &tr.entries()[0];
        assert_eq!(e.name, "nop");
        assert!(e.verified);
        assert_eq!(e.before, e.after);
        assert_eq!(e.fingerprint, Some(ir_fingerprint(&m)));
    }

    #[test]
    fn print_after_matches_pass_and_subphases() {
        let p = PrintAfter::Pass("squeeze".to_string());
        assert!(p.matches("squeeze"));
        assert!(p.matches("squeeze.prepare"));
        assert!(!p.matches("squeezer"));
        assert!(!p.matches("dce"));
        assert!(PrintAfter::All.matches("anything"));
        assert!(!PrintAfter::None.matches("anything"));
        assert_eq!(PrintAfter::parse("all"), PrintAfter::All);
        assert_eq!(PrintAfter::parse("dce"), PrintAfter::Pass("dce".into()));
    }

    #[test]
    fn print_after_captures_dump() {
        let mut m = demo_module();
        let mut tr = Tracer::new(TracePolicy {
            verify_each: true,
            print_after: PrintAfter::All,
            echo_dumps: false,
        });
        tr.run_sir(&mut m, &mut Nop).unwrap();
        let dump = tr.entries()[0].dump.as_deref().expect("dump captured");
        assert!(dump.contains("func add1"));
    }

    struct Corrupt;
    impl SirPass for Corrupt {
        fn name(&self) -> &'static str {
            "corrupt"
        }
        fn run(&mut self, m: &mut Module, _tr: &mut Tracer) {
            // Width mismatch (W8 add over W32 operands): the verifier must
            // reject this.
            m.funcs[0].insts[2] = crate::Inst::Bin {
                op: BinOp::Add,
                width: Width::W8,
                lhs: crate::ValueId(0),
                rhs: crate::ValueId(1),
                speculative: false,
            };
        }
    }

    #[test]
    fn failing_pass_is_named_with_last_good_ir() {
        let mut m = demo_module();
        let mut tr = Tracer::new(TracePolicy::verify(true));
        let err = tr.run_sir(&mut m, &mut Corrupt).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("corrupt"), "error names the pass: {msg}");
        assert!(
            err.last_good_ir()
                .is_some_and(|ir| ir.contains("func add1")),
            "failure artifact carries the last-good IR"
        );
        assert!(!tr.entries()[0].verified);
    }
}
