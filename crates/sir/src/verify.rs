//! IR verifier.
//!
//! Checks structural SSA invariants (dominance, φ placement, width
//! agreement) plus the speculative-region rules of §3.1.1:
//!
//! * a handler cannot be contained in any speculative region,
//! * handlers are never the target of an ordinary branch,
//! * a block belongs to at most one region and a handler handles exactly one,
//! * speculative instructions only appear inside speculative regions,
//! * Theorem 3.1: no value defined within a region is used by its handler.
//!
//! Violations are reported as structured [`Diag`]s with stable rule IDs
//! (`SIR-*`), shared with the `bitlint` / SMIR / emit-layout checkers.

use crate::diag::Diag;
use crate::dom::{def_blocks, DomTree};
use crate::func::Function;
use crate::inst::{Inst, Terminator};
use crate::module::Module;
use crate::types::{BlockId, ValueId, Width};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// Pass name stamped on diagnostics produced by this verifier.
pub const PASS: &str = "sir-verify";

/// Verification failure: one or more broken invariants in a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Name of the offending function (first offender for multi-function
    /// checks; each diagnostic carries its own function name too).
    pub func: String,
    /// The violated invariants.
    pub problems: Vec<Diag>,
    /// Pipeline pass after which verification rejected, when run under a
    /// [`crate::pass::Tracer`] (the dump-on-failure artifact).
    pub pass: Option<String>,
    /// Printed last-good IR — the module *before* the failing pass — when
    /// the tracer captured one.
    pub last_good: Option<String>,
}

impl VerifyError {
    /// Wraps a non-empty diagnostic list into an error.
    ///
    /// Returns `Ok(())` when `problems` is empty.
    pub fn check(problems: Vec<Diag>) -> Result<(), VerifyError> {
        match problems.first() {
            None => Ok(()),
            Some(first) => {
                let func = first.func.clone();
                Err(VerifyError {
                    func,
                    problems,
                    pass: None,
                    last_good: None,
                })
            }
        }
    }

    /// True when any diagnostic carries `rule`.
    pub fn has_rule(&self, rule: &str) -> bool {
        self.problems.iter().any(|d| d.rule == rule)
    }

    /// Attaches the failing pass name and the last-good IR artifact.
    pub fn in_pass(mut self, pass: &str, last_good: String) -> VerifyError {
        self.pass = Some(pass.to_string());
        self.last_good = Some(last_good);
        self
    }

    /// The last-good IR artifact, if verification failed under a tracer.
    pub fn last_good_ir(&self) -> Option<&str> {
        self.last_good.as_deref()
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verification of `{}` failed", self.func)?;
        if let Some(p) = &self.pass {
            write!(f, " after pass `{p}`")?;
        }
        write!(f, ":")?;
        for p in &self.problems {
            write!(f, "\n  - {p}")?;
        }
        Ok(())
    }
}

impl Error for VerifyError {}

/// Verifies every function in `m`, including call-signature agreement.
///
/// # Errors
/// Returns the first function's accumulated violations.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for f in &m.funcs {
        verify_function_in(f, Some(m))?;
    }
    Ok(())
}

/// Verifies a single function without module context (calls unchecked).
///
/// # Errors
/// Returns all violations found in `f`.
pub fn verify_function(f: &Function) -> Result<(), VerifyError> {
    verify_function_in(f, None)
}

fn verify_function_in(f: &Function, m: Option<&Module>) -> Result<(), VerifyError> {
    let mut d = Diags {
        func: &f.name,
        problems: Vec::new(),
    };
    check_params(f, &mut d);
    check_blocks(f, &mut d);
    check_widths(f, m, &mut d);
    check_ssa(f, &mut d);
    check_regions(f, &mut d);
    VerifyError::check(d.problems)
}

/// Accumulator stamping the pass and function onto each diagnostic.
struct Diags<'a> {
    func: &'a str,
    problems: Vec<Diag>,
}

impl Diags<'_> {
    fn push(&mut self, rule: &'static str, loc: impl ToString, msg: impl Into<String>) {
        self.problems
            .push(Diag::new(rule, PASS, self.func, loc, msg));
    }
}

fn check_params(f: &Function, d: &mut Diags) {
    let entry = f.block(f.entry);
    if entry.insts.len() < f.params.len() {
        d.push(
            "SIR-PARAM",
            f.entry,
            "entry block shorter than parameter list",
        );
        return;
    }
    for (i, w) in f.params.iter().enumerate() {
        match f.inst(entry.insts[i]) {
            Inst::Param { index, width } if *index == i as u32 && width == w => {}
            other => d.push(
                "SIR-PARAM",
                f.entry,
                format!("entry slot {i} should be param {i} of {w}, found {other:?}"),
            ),
        }
    }
}

fn check_blocks(f: &Function, d: &mut Diags) {
    let preds = f.branch_preds();
    for b in f.block_ids() {
        let blk = f.block(b);
        // φ-nodes first.
        let mut seen_non_phi = false;
        for &v in &blk.insts {
            let inst = f.inst(v);
            if inst.is_phi() {
                if seen_non_phi {
                    d.push("SIR-PHI-ORDER", b, format!("φ {v} after non-φ instruction"));
                }
            } else if !matches!(inst, Inst::Param { .. }) {
                seen_non_phi = true;
            }
        }
        // φ incoming edges must exactly match branch predecessors.
        let pred_set: HashSet<BlockId> = preds[b.index()].iter().copied().collect();
        for &v in &blk.insts {
            if let Inst::Phi { incomings, .. } = f.inst(v) {
                let inc: HashSet<BlockId> = incomings.iter().map(|(p, _)| *p).collect();
                if inc != pred_set {
                    d.push(
                        "SIR-PHI-EDGES",
                        b,
                        format!("φ {v} incoming blocks {inc:?} != predecessors {pred_set:?}"),
                    );
                }
                if inc.len() != incomings.len() {
                    d.push(
                        "SIR-PHI-EDGES",
                        b,
                        format!("φ {v} has duplicate incoming blocks"),
                    );
                }
            }
        }
        // Branch targets in range.
        for s in blk.term.successors() {
            if s.index() >= f.blocks.len() {
                d.push(
                    "SIR-BR-RANGE",
                    b,
                    format!("branch to out-of-range block {s}"),
                );
            }
        }
    }
}

fn check_widths(f: &Function, m: Option<&Module>, d: &mut Diags) {
    let w_of = |v: ValueId| f.value_width(v);
    for (vi, inst) in f.insts.iter().enumerate() {
        let v = ValueId(vi as u32);
        match inst {
            Inst::Bin {
                width, lhs, rhs, ..
            } => {
                for op in [lhs, rhs] {
                    if w_of(*op) != Some(*width) {
                        d.push(
                            "SIR-WIDTH",
                            v,
                            format!("bin operand {op} width mismatch ({width})"),
                        );
                    }
                }
            }
            Inst::Icmp {
                width, lhs, rhs, ..
            } => {
                for op in [lhs, rhs] {
                    if w_of(*op) != Some(*width) {
                        d.push("SIR-WIDTH", v, format!("icmp operand {op} width mismatch"));
                    }
                }
            }
            Inst::Zext { to, arg } | Inst::Sext { to, arg } => match w_of(*arg) {
                Some(fw) if fw < *to => {}
                _ => d.push("SIR-EXT", v, "extension must widen"),
            },
            Inst::Trunc { to, arg, .. } => match w_of(*arg) {
                Some(fw) if fw > *to => {}
                _ => d.push("SIR-EXT", v, "truncation must narrow"),
            },
            Inst::Load {
                addr,
                speculative,
                width,
                ..
            } => {
                if w_of(*addr) != Some(Width::W32) {
                    d.push("SIR-WIDTH", v, "load address must be i32");
                }
                if *speculative && *width != Width::W32 {
                    d.push("SIR-WIDTH", v, "speculative load must access i32");
                }
            }
            Inst::Store {
                width, addr, value, ..
            } => {
                if w_of(*addr) != Some(Width::W32) {
                    d.push("SIR-WIDTH", v, "store address must be i32");
                }
                if w_of(*value) != Some(*width) {
                    d.push("SIR-WIDTH", v, "store value width mismatch");
                }
            }
            Inst::Select {
                width,
                cond,
                tval,
                fval,
            } => {
                if w_of(*cond) != Some(Width::W1) {
                    d.push("SIR-WIDTH", v, "select condition must be i1");
                }
                for op in [tval, fval] {
                    if w_of(*op) != Some(*width) {
                        d.push("SIR-WIDTH", v, "select operand width mismatch");
                    }
                }
            }
            Inst::Call { callee, args, ret } => {
                if let Some(m) = m {
                    if callee.index() >= m.funcs.len() {
                        d.push("SIR-CALL", v, format!("call to unknown function {callee}"));
                        continue;
                    }
                    let cf = m.func(*callee);
                    if cf.params.len() != args.len() {
                        d.push(
                            "SIR-CALL",
                            v,
                            format!("call arity mismatch for `{}`", cf.name),
                        );
                    } else {
                        for (a, pw) in args.iter().zip(&cf.params) {
                            if w_of(*a) != Some(*pw) {
                                d.push("SIR-CALL", v, format!("call arg {a} width != param {pw}"));
                            }
                        }
                    }
                    if *ret != cf.ret {
                        d.push("SIR-CALL", v, "call return width mismatch");
                    }
                }
            }
            Inst::Phi {
                width, incomings, ..
            } => {
                for (_, val) in incomings {
                    if w_of(*val) != Some(*width) {
                        d.push("SIR-WIDTH", v, format!("φ incoming {val} width mismatch"));
                    }
                }
            }
            _ => {}
        }
    }
    for b in f.block_ids() {
        if let Terminator::CondBr { cond, .. } = &f.block(b).term {
            if w_of(*cond) != Some(Width::W1) {
                d.push("SIR-WIDTH", b, "condbr condition must be i1");
            }
        }
        if let Terminator::Ret(Some(v)) = &f.block(b).term {
            if w_of(*v) != f.ret {
                d.push("SIR-WIDTH", b, "return width mismatch");
            }
        }
    }
}

fn check_ssa(f: &Function, d: &mut Diags) {
    let defs = def_blocks(f);
    let dt = DomTree::compute(f);
    // Each value placed at most once.
    let mut placed: HashSet<ValueId> = HashSet::new();
    for b in f.block_ids() {
        for &v in &f.block(b).insts {
            if !placed.insert(v) {
                d.push("SIR-SSA-PLACE", v, "placed in more than one block");
            }
        }
    }
    // Dominance of uses. Within a block, a def must precede its use.
    for b in f.block_ids() {
        if !dt.is_reachable(b) {
            continue;
        }
        let mut seen: HashSet<ValueId> = HashSet::new();
        for &v in &f.block(b).insts {
            let inst = f.inst(v);
            if let Inst::Phi { incomings, .. } = inst {
                for (p, val) in incomings {
                    if let Some(db) = defs.get(val) {
                        if !dt.is_reachable(*p) {
                            continue;
                        }
                        if !dt.dominates(*db, *p) {
                            d.push(
                                "SIR-SSA-DOM",
                                v,
                                format!("φ incoming {val} from {p} not dominated by def in {db}"),
                            );
                        }
                    } else {
                        d.push(
                            "SIR-SSA-PLACE",
                            v,
                            format!("φ incoming {val} is not placed"),
                        );
                    }
                }
            } else {
                for op in inst.operands() {
                    check_use(f, &defs, &dt, b, &seen, &format!("{v}"), op, d);
                }
            }
            seen.insert(v);
        }
        let term_ops = f.block(b).term.operands();
        for op in term_ops {
            check_use(f, &defs, &dt, b, &seen, "terminator", op, d);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_use(
    _f: &Function,
    defs: &std::collections::HashMap<ValueId, BlockId>,
    dt: &DomTree,
    b: BlockId,
    seen: &HashSet<ValueId>,
    user: &str,
    op: ValueId,
    d: &mut Diags,
) {
    match defs.get(&op) {
        None => d.push(
            "SIR-SSA-PLACE",
            b,
            format!("{user}: operand {op} is not placed"),
        ),
        Some(db) if *db == b => {
            if !seen.contains(&op) {
                d.push(
                    "SIR-SSA-DOM",
                    b,
                    format!("{user}: use of {op} before its definition"),
                );
            }
        }
        Some(db) => {
            if dt.is_reachable(*db) && !dt.dominates(*db, b) {
                d.push(
                    "SIR-SSA-DOM",
                    b,
                    format!("{user}: def of {op} in {db} does not dominate use"),
                );
            }
        }
    }
}

fn check_regions(f: &Function, d: &mut Diags) {
    let preds = f.branch_preds();
    let defs = def_blocks(f);
    let mut handler_of: Vec<Option<usize>> = vec![None; f.blocks.len()];
    for (ri, r) in f.regions.iter().enumerate() {
        if r.blocks.is_empty() {
            d.push("SIR-REGION", format!("sr{ri}"), "empty region");
            continue;
        }
        // Handler not inside any region.
        if f.block(r.handler).region.is_some() {
            d.push(
                "SIR-REGION",
                r.handler,
                format!("sr{ri}: handler {} inside a region", r.handler),
            );
        }
        // Handler not targeted by branches.
        if !preds[r.handler.index()].is_empty() {
            d.push(
                "SIR-REGION",
                r.handler,
                format!(
                    "sr{ri}: handler {} is a branch target of {:?}",
                    r.handler,
                    preds[r.handler.index()]
                ),
            );
        }
        // Handler handles exactly one region.
        if let Some(prev) = handler_of[r.handler.index()] {
            d.push(
                "SIR-REGION",
                r.handler,
                format!("sr{ri}: handler {} already handles sr{prev}", r.handler),
            );
        }
        handler_of[r.handler.index()] = Some(ri);
        // Blocks belong to this region (single membership by construction).
        let members: HashSet<BlockId> = r.blocks.iter().copied().collect();
        for &b in &r.blocks {
            if f.block(b).region != Some(crate::types::RegionId(ri as u32)) {
                d.push(
                    "SIR-REGION",
                    b,
                    format!("sr{ri}: block {b} membership out of sync"),
                );
            }
            // Single entry: outside branches may only target the entry.
            if b != r.entry() {
                for &p in &preds[b.index()] {
                    if !members.contains(&p) {
                        d.push(
                            "SIR-REGION",
                            b,
                            format!("sr{ri}: outside branch {p} → {b} enters region past entry"),
                        );
                    }
                }
            }
        }
        // No φ in handler (handlers begin with extensions, per §3.2.3 ③).
        for &v in &f.block(r.handler).insts {
            if f.inst(v).is_phi() {
                d.push(
                    "SIR-HANDLER-PHI",
                    r.handler,
                    format!("sr{ri}: handler {} contains φ {v}", r.handler),
                );
            }
        }
        // Theorem 3.1: handler must not use values defined in the region.
        for &v in &f.block(r.handler).insts {
            for op in f.inst(v).operands() {
                if let Some(db) = defs.get(&op) {
                    if members.contains(db) {
                        d.push(
                            "SIR-THM31",
                            r.handler,
                            format!(
                                "sr{ri}: handler uses {op} defined inside the region (Thm 3.1)"
                            ),
                        );
                    }
                }
            }
        }
        for op in f.block(r.handler).term.operands() {
            if let Some(db) = defs.get(&op) {
                if members.contains(db) {
                    d.push(
                        "SIR-THM31",
                        r.handler,
                        format!("sr{ri}: handler terminator uses {op} defined inside the region"),
                    );
                }
            }
        }
    }
    // Speculative instructions only inside regions.
    for b in f.block_ids() {
        let in_region = f.block(b).region.is_some();
        for &v in &f.block(b).insts {
            if f.inst(v).is_speculative() && !in_region {
                d.push(
                    "SIR-SPEC-REGION",
                    v,
                    "speculative instruction outside any region",
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::BinOp;
    use crate::module::Module;

    #[test]
    fn valid_function_passes() {
        let mut b = FunctionBuilder::new("ok", vec![Width::W32], Some(Width::W32));
        let x = b.param(0);
        let one = b.iconst(Width::W32, 1);
        let y = b.bin(BinOp::Add, Width::W32, x, one);
        b.ret(Some(y));
        assert!(verify_function(&b.finish()).is_ok());
    }

    #[test]
    fn width_mismatch_detected() {
        let mut b = FunctionBuilder::new("bad", vec![Width::W32], Some(Width::W32));
        let x = b.param(0);
        let narrow = b.iconst(Width::W8, 1);
        let y = b.bin(BinOp::Add, Width::W32, x, narrow);
        b.ret(Some(y));
        let err = verify_function(&b.finish()).unwrap_err();
        assert!(err.has_rule("SIR-WIDTH"));
        assert!(err
            .problems
            .iter()
            .any(|p| p.msg.contains("width mismatch")));
        assert!(err.to_string().contains("bad"));
        // Shared diagnostic format: rule [pass] func:loc: msg.
        assert!(err.to_string().contains("SIR-WIDTH [sir-verify] bad:"));
    }

    #[test]
    fn use_before_def_detected() {
        let mut f = Function::new("ubd", vec![], Some(Width::W32));
        let e = f.entry;
        // Create add that uses a later const.
        let c = f.add_inst(Inst::Const {
            width: Width::W32,
            value: 1,
        });
        let a = f.add_inst(Inst::Bin {
            op: BinOp::Add,
            width: Width::W32,
            lhs: c,
            rhs: c,
            speculative: false,
        });
        f.block_mut(e).insts.push(a);
        f.block_mut(e).insts.push(c);
        f.block_mut(e).term = Terminator::Ret(Some(a));
        let err = verify_function(&f).unwrap_err();
        assert!(err.has_rule("SIR-SSA-DOM"));
        assert!(err
            .problems
            .iter()
            .any(|p| p.msg.contains("before its definition")));
    }

    #[test]
    fn speculative_inst_outside_region_rejected() {
        let mut b = FunctionBuilder::new("spec", vec![], Some(Width::W8));
        let x = b.iconst(Width::W8, 1);
        let mut f = b.finish();
        let y = f.append_inst(
            f.entry,
            Inst::Bin {
                op: BinOp::Add,
                width: Width::W8,
                lhs: x,
                rhs: x,
                speculative: true,
            },
        );
        f.block_mut(f.entry).term = Terminator::Ret(Some(y));
        let err = verify_function(&f).unwrap_err();
        assert!(err.has_rule("SIR-SPEC-REGION"));
    }

    #[test]
    fn handler_branch_target_rejected() {
        let mut f = Function::new("h", vec![], None);
        let r = f.add_block();
        let h = f.add_block();
        f.block_mut(f.entry).term = Terminator::Br(r);
        f.block_mut(r).term = Terminator::Br(h); // illegal: branch to handler
        f.block_mut(h).term = Terminator::Ret(None);
        f.add_region(vec![r], h);
        let err = verify_function(&f).unwrap_err();
        assert!(err.has_rule("SIR-REGION"));
        assert!(err.problems.iter().any(|p| p.msg.contains("branch target")));
    }

    #[test]
    fn theorem_3_1_violation_rejected() {
        let mut f = Function::new("t31", vec![], Some(Width::W32));
        let r = f.add_block();
        let h = f.add_block();
        let x = f.add_block();
        f.block_mut(f.entry).term = Terminator::Br(r);
        let v = f.append_inst(
            r,
            Inst::Const {
                width: Width::W32,
                value: 7,
            },
        );
        f.block_mut(r).term = Terminator::Br(x);
        // handler illegally uses v (defined inside the region)
        f.block_mut(h).term = Terminator::Ret(Some(v));
        f.block_mut(x).term = Terminator::Ret(Some(v));
        f.add_region(vec![r], h);
        let err = verify_function(&f).unwrap_err();
        assert!(err.has_rule("SIR-THM31"));
        assert!(err
            .problems
            .iter()
            .any(|p| p.msg.contains("defined inside the region")));
    }

    #[test]
    fn call_signature_checked_at_module_level() {
        let mut m = Module::new("m");
        let mut callee = FunctionBuilder::new("callee", vec![Width::W32], Some(Width::W32));
        let p = callee.param(0);
        callee.ret(Some(p));
        let cid = m.add_function(callee.finish());
        let mut caller = FunctionBuilder::new("caller", vec![], Some(Width::W32));
        let narrow = caller.iconst(Width::W8, 3);
        let r = caller.call(cid, vec![narrow], Some(Width::W32));
        caller.ret(Some(r));
        m.add_function(caller.finish());
        let err = verify_module(&m).unwrap_err();
        assert!(err.has_rule("SIR-CALL"));
        assert!(err.problems.iter().any(|p| p.msg.contains("call arg")));
    }
}
