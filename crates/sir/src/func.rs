//! Functions, basic blocks and speculative regions.

use crate::inst::{Inst, Terminator};
use crate::types::{BlockId, RegionId, ValueId, Width};
use std::collections::HashMap;

/// A basic block: a list of instruction (value) ids plus one terminator.
#[derive(Clone, Debug)]
pub struct Block {
    /// Instructions in execution order. φ-nodes must come first.
    pub insts: Vec<ValueId>,
    /// The block terminator.
    pub term: Terminator,
    /// The speculative region containing this block, if any.
    pub region: Option<RegionId>,
    /// Set if this block is the misspeculation handler *for* a region.
    pub handler_for: Option<RegionId>,
}

impl Block {
    fn new() -> Block {
        Block {
            insts: Vec::new(),
            term: Terminator::Unreachable,
            region: None,
            handler_for: None,
        }
    }
}

/// A speculative region (§3.1.1): a single-entry single-exit sequence of
/// basic blocks with a unique misspeculation handler.
#[derive(Clone, Debug)]
pub struct Region {
    /// Blocks belonging to the region, entry first.
    pub blocks: Vec<BlockId>,
    /// The handler block, invoked iff an instruction in the region
    /// misspeculates. Never the target of an ordinary branch.
    pub handler: BlockId,
}

impl Region {
    /// The region entry block (`Entry : SR → BB`).
    pub fn entry(&self) -> BlockId {
        self.blocks[0]
    }
}

/// A SIR function in SSA form.
#[derive(Clone, Debug)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Parameter widths.
    pub params: Vec<Width>,
    /// Return width, or `None` for `void`.
    pub ret: Option<Width>,
    /// Value arena: `insts[v.index()]` is the defining instruction of `v`.
    pub insts: Vec<Inst>,
    /// Block arena.
    pub blocks: Vec<Block>,
    /// Speculative regions.
    pub regions: Vec<Region>,
    /// The entry block.
    pub entry: BlockId,
}

impl Function {
    /// Creates an empty function with a fresh entry block containing the
    /// parameter pseudo-instructions.
    pub fn new(name: impl Into<String>, params: Vec<Width>, ret: Option<Width>) -> Function {
        let mut f = Function {
            name: name.into(),
            params: params.clone(),
            ret,
            insts: Vec::new(),
            blocks: Vec::new(),
            regions: Vec::new(),
            entry: BlockId(0),
        };
        let entry = f.add_block();
        f.entry = entry;
        for (i, w) in params.iter().enumerate() {
            let v = f.add_inst(Inst::Param {
                index: i as u32,
                width: *w,
            });
            f.blocks[entry.index()].insts.push(v);
        }
        f
    }

    /// The value id of parameter `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn param_value(&self, i: usize) -> ValueId {
        assert!(i < self.params.len(), "parameter index out of range");
        self.blocks[self.entry.index()].insts[i]
    }

    /// Appends a new empty block and returns its id.
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new());
        id
    }

    /// Adds an instruction to the value arena (not yet placed in a block).
    pub fn add_inst(&mut self, inst: Inst) -> ValueId {
        let id = ValueId(self.insts.len() as u32);
        self.insts.push(inst);
        id
    }

    /// Adds an instruction and appends it to `block`.
    pub fn append_inst(&mut self, block: BlockId, inst: Inst) -> ValueId {
        let v = self.add_inst(inst);
        self.blocks[block.index()].insts.push(v);
        v
    }

    /// Accessor for an instruction.
    pub fn inst(&self, v: ValueId) -> &Inst {
        &self.insts[v.index()]
    }

    /// Mutable accessor for an instruction.
    pub fn inst_mut(&mut self, v: ValueId) -> &mut Inst {
        &mut self.insts[v.index()]
    }

    /// Accessor for a block.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Mutable accessor for a block.
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.index()]
    }

    /// Iterator over all block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// The width of value `v`, if it produces one.
    pub fn value_width(&self, v: ValueId) -> Option<Width> {
        self.inst(v).result_width()
    }

    /// Registers a new speculative region. The handler block is marked.
    pub fn add_region(&mut self, blocks: Vec<BlockId>, handler: BlockId) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        for &b in &blocks {
            self.blocks[b.index()].region = Some(id);
        }
        self.blocks[handler.index()].handler_for = Some(id);
        self.regions.push(Region { blocks, handler });
        id
    }

    /// *Branch* successors of `b` (handler edges excluded).
    pub fn succs(&self, b: BlockId) -> Vec<BlockId> {
        self.block(b).term.successors()
    }

    /// Branch predecessor map for all blocks (handler edges excluded).
    pub fn branch_preds(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in self.block_ids() {
            for s in self.succs(b) {
                preds[s.index()].push(b);
            }
        }
        preds
    }

    /// SIR predecessor map (§3.1.2): like [`Function::branch_preds`], but a
    /// region handler additionally inherits the predecessors of the region
    /// entry (equation 1). This is what liveness and the verifier use to
    /// establish that values defined inside a region are dead in its handler.
    pub fn sir_preds(&self) -> Vec<Vec<BlockId>> {
        let mut preds = self.branch_preds();
        for r in &self.regions {
            let entry_preds = preds[r.entry().index()].clone();
            let hp = &mut preds[r.handler.index()];
            for p in entry_preds {
                if !hp.contains(&p) {
                    hp.push(p);
                }
            }
        }
        preds
    }

    /// Control-flow successor map *including* misspeculation edges: every
    /// block of a region may transfer control to the region handler. This is
    /// the conservative view used by liveness (SMIR semantics, equation 2).
    pub fn spec_succs(&self, b: BlockId) -> Vec<BlockId> {
        let mut s = self.succs(b);
        if let Some(r) = self.block(b).region {
            let h = self.regions[r.index()].handler;
            if !s.contains(&h) {
                s.push(h);
            }
        }
        s
    }

    /// Reverse postorder over branch edges from the entry block.
    pub fn rpo(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::with_capacity(self.blocks.len());
        // Iterative DFS with explicit stack to avoid recursion depth limits.
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        visited[self.entry.index()] = true;
        while let Some((b, i)) = stack.pop() {
            let succs = self.reachable_succs(b);
            if i < succs.len() {
                stack.push((b, i + 1));
                let s = succs[i];
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
            }
        }
        post.reverse();
        post
    }

    /// Successors for traversal purposes: branch successors plus handler
    /// edges (so handlers are reachable in RPO).
    fn reachable_succs(&self, b: BlockId) -> Vec<BlockId> {
        self.spec_succs(b)
    }

    /// Returns the number of φ-nodes at the head of `b`.
    pub fn phi_count(&self, b: BlockId) -> usize {
        self.block(b)
            .insts
            .iter()
            .take_while(|v| self.inst(**v).is_phi())
            .count()
    }

    /// Replaces every use of `from` with `to` across the whole function
    /// (instruction operands and terminators).
    pub fn replace_all_uses(&mut self, from: ValueId, to: ValueId) {
        let map = |v: ValueId| if v == from { to } else { v };
        for inst in &mut self.insts {
            inst.map_operands(map);
        }
        for block in &mut self.blocks {
            block.term.map_operands(map);
        }
    }

    /// Applies a bulk value substitution to all operands.
    pub fn rewrite_uses(&mut self, map: &HashMap<ValueId, ValueId>) {
        let f = |v: ValueId| *map.get(&v).unwrap_or(&v);
        for inst in &mut self.insts {
            inst.map_operands(f);
        }
        for block in &mut self.blocks {
            block.term.map_operands(f);
        }
    }

    /// Splits `b` before position `at` (an index into `insts`). The first
    /// `at` instructions stay in `b`; the rest move to a new block, which
    /// inherits the terminator, region membership and successor φ edges;
    /// `b` gets an unconditional branch to the new block. Returns the new
    /// block's id.
    pub fn split_block(&mut self, b: BlockId, at: usize) -> BlockId {
        let nb = self.add_block();
        let (tail, term) = {
            let blk = &mut self.blocks[b.index()];
            let tail = blk.insts.split_off(at);
            let term = std::mem::replace(&mut blk.term, Terminator::Br(nb));
            (tail, term)
        };
        let succs = term.successors();
        let region = self.blocks[b.index()].region;
        {
            let nblk = &mut self.blocks[nb.index()];
            nblk.insts = tail;
            nblk.term = term;
            nblk.region = region;
        }
        // Fix φ-incoming block ids in successors: edges from `b` now come
        // from `nb`.
        for s in succs {
            let phis: Vec<ValueId> = self.blocks[s.index()]
                .insts
                .iter()
                .copied()
                .filter(|v| self.inst(*v).is_phi())
                .collect();
            for p in phis {
                if let Inst::Phi { incomings, .. } = self.inst_mut(p) {
                    for (pb, _) in incomings {
                        if *pb == b {
                            *pb = nb;
                        }
                    }
                }
            }
        }
        nb
    }

    /// Total number of non-φ instructions (a static size metric used by the
    /// expander's auto-tuner).
    pub fn static_size(&self) -> usize {
        self.block_ids()
            .map(|b| {
                self.block(b)
                    .insts
                    .iter()
                    .filter(|v| !self.inst(**v).is_phi())
                    .count()
                    + 1 // terminator
            })
            .sum()
    }

    /// Removes blocks unreachable from the entry (via branch + handler
    /// edges), remapping block ids. Instructions stay in the arena; dangling
    /// φ edges from removed predecessors are pruned.
    pub fn remove_unreachable_blocks(&mut self) {
        let mut reach = vec![false; self.blocks.len()];
        let mut work = vec![self.entry];
        reach[self.entry.index()] = true;
        while let Some(b) = work.pop() {
            for s in self.spec_succs(b) {
                if !reach[s.index()] {
                    reach[s.index()] = true;
                    work.push(s);
                }
            }
        }
        if reach.iter().all(|r| *r) {
            return;
        }
        // Build remap.
        let mut remap: Vec<Option<BlockId>> = vec![None; self.blocks.len()];
        let mut new_blocks = Vec::new();
        for (i, keep) in reach.iter().enumerate() {
            if *keep {
                remap[i] = Some(BlockId(new_blocks.len() as u32));
                new_blocks.push(self.blocks[i].clone());
            }
        }
        let rm = |b: BlockId| remap[b.index()].expect("branch to removed block");
        for blk in &mut new_blocks {
            blk.term.map_successors(rm);
        }
        self.entry = rm(self.entry);
        // Prune φ edges from removed predecessors and remap the rest.
        let reach_set = reach;
        for inst in &mut self.insts {
            if let Inst::Phi { incomings, .. } = inst {
                incomings.retain(|(pb, _)| reach_set[pb.index()]);
                for (pb, _) in incomings {
                    *pb = remap[pb.index()].unwrap();
                }
            }
        }
        // Remap regions, dropping regions whose blocks vanished entirely.
        let mut new_regions = Vec::new();
        for r in &self.regions {
            let blocks: Vec<BlockId> = r
                .blocks
                .iter()
                .filter(|b| reach_set[b.index()])
                .map(|b| remap[b.index()].unwrap())
                .collect();
            if blocks.is_empty() || !reach_set[r.handler.index()] {
                continue;
            }
            new_regions.push(Region {
                blocks,
                handler: remap[r.handler.index()].unwrap(),
            });
        }
        // Rewrite region back-references.
        for blk in &mut new_blocks {
            blk.region = None;
            blk.handler_for = None;
        }
        self.blocks = new_blocks;
        self.regions = Vec::new();
        for r in new_regions {
            self.add_region(r.blocks, r.handler);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::BinOp;

    fn simple_fn() -> Function {
        // entry: v = a + b; br b1 / b2 on (v == 0); both ret.
        let mut f = Function::new("t", vec![Width::W32, Width::W32], Some(Width::W32));
        let e = f.entry;
        let a = f.param_value(0);
        let b = f.param_value(1);
        let v = f.append_inst(
            e,
            Inst::Bin {
                op: BinOp::Add,
                width: Width::W32,
                lhs: a,
                rhs: b,
                speculative: false,
            },
        );
        let z = f.append_inst(
            e,
            Inst::Const {
                width: Width::W32,
                value: 0,
            },
        );
        let c = f.append_inst(
            e,
            Inst::Icmp {
                cc: crate::Cc::Eq,
                width: Width::W32,
                lhs: v,
                rhs: z,
            },
        );
        let b1 = f.add_block();
        let b2 = f.add_block();
        f.block_mut(e).term = Terminator::CondBr {
            cond: c,
            if_true: b1,
            if_false: b2,
        };
        f.block_mut(b1).term = Terminator::Ret(Some(z));
        f.block_mut(b2).term = Terminator::Ret(Some(v));
        f
    }

    #[test]
    fn params_are_first_values() {
        let f = simple_fn();
        assert_eq!(f.param_value(0), ValueId(0));
        assert_eq!(f.param_value(1), ValueId(1));
        assert_eq!(f.value_width(f.param_value(0)), Some(Width::W32));
    }

    #[test]
    fn preds_and_succs() {
        let f = simple_fn();
        assert_eq!(f.succs(f.entry).len(), 2);
        let preds = f.branch_preds();
        assert_eq!(preds[1], vec![f.entry]);
        assert_eq!(preds[2], vec![f.entry]);
        assert!(preds[0].is_empty());
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = simple_fn();
        let rpo = f.rpo();
        assert_eq!(rpo[0], f.entry);
        assert_eq!(rpo.len(), 3);
    }

    #[test]
    fn split_block_moves_tail_and_rewires() {
        let mut f = simple_fn();
        let nb = f.split_block(f.entry, 3); // keep params + add
        assert_eq!(f.block(f.entry).insts.len(), 3);
        assert_eq!(f.block(nb).insts.len(), 2);
        assert_eq!(f.succs(f.entry), vec![nb]);
        assert_eq!(f.succs(nb).len(), 2);
    }

    #[test]
    fn handler_preds_inherit_region_entry_preds() {
        let mut f = simple_fn();
        // Make bb1 a speculative region with a handler block.
        let h = f.add_block();
        f.block_mut(h).term = Terminator::Ret(None);
        let b1 = BlockId(1);
        f.add_region(vec![b1], h);
        let preds = f.sir_preds();
        // Handler inherits entry's preds: preds(bb1) = {entry}.
        assert_eq!(preds[h.index()], vec![f.entry]);
        // Branch preds do not include the handler edge.
        assert!(f.branch_preds()[h.index()].is_empty());
        // spec_succs of region block includes the handler.
        assert!(f.spec_succs(b1).contains(&h));
    }

    #[test]
    fn replace_all_uses_rewrites_terms() {
        let mut f = simple_fn();
        let v = ValueId(2); // the add
        let z = ValueId(3); // the const
        f.replace_all_uses(v, z);
        match &f.block(BlockId(2)).term {
            Terminator::Ret(Some(r)) => assert_eq!(*r, z),
            t => panic!("unexpected terminator {t:?}"),
        }
    }

    #[test]
    fn remove_unreachable_blocks_compacts() {
        let mut f = simple_fn();
        let dead = f.add_block();
        f.block_mut(dead).term = Terminator::Ret(None);
        assert_eq!(f.blocks.len(), 4);
        f.remove_unreachable_blocks();
        assert_eq!(f.blocks.len(), 3);
    }
}
