//! Structured verification diagnostics.
//!
//! Every checker in the pipeline — the SIR verifier, the `bitlint`
//! speculation-soundness analysis, the SMIR verifier and the emit-layout
//! checker — reports violations as [`Diag`]s so that a broken invariant is
//! always attributable to a stable rule ID, the pass that found it, and a
//! `function:location` coordinate.

use std::fmt;

/// One violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Stable machine-matchable rule identifier, e.g. `SIR-THM31` or
    /// `EMIT-DELTA`. Rule IDs never change meaning across releases; tests
    /// and tooling key on them.
    pub rule: &'static str,
    /// The pipeline stage that detected the violation, e.g. `sir-verify`,
    /// `bitlint`, `mir-verify`, `emit-verify`.
    pub pass: &'static str,
    /// Name of the offending function (empty for whole-program checks).
    pub func: String,
    /// Block/value coordinate within the function, e.g. `b3` or `v17`.
    pub loc: String,
    /// Human-readable description of the violation.
    pub msg: String,
}

impl Diag {
    /// Creates a diagnostic.
    pub fn new(
        rule: &'static str,
        pass: &'static str,
        func: impl Into<String>,
        loc: impl ToString,
        msg: impl Into<String>,
    ) -> Diag {
        Diag {
            rule,
            pass,
            func: func.into(),
            loc: loc.to_string(),
            msg: msg.into(),
        }
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}:{}: {}",
            self.rule, self.pass, self.func, self.loc, self.msg
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable_shared_format() {
        let d = Diag::new("SIR-THM31", "sir-verify", "main", "b4", "handler uses v7");
        assert_eq!(
            d.to_string(),
            "SIR-THM31 [sir-verify] main:b4: handler uses v7"
        );
    }
}
