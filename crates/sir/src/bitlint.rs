//! `bitlint` — the speculation-soundness checker over post-squeeze SIR.
//!
//! `verify` proves structural well-formedness; bitlint proves the stronger
//! *soundness* conditions the paper's transformation relies on:
//!
//! * **LINT-COVER** — every speculative (narrowed) instruction is covered:
//!   its block belongs to a region whose entry dominates it and whose
//!   handler exists, is reachable on the misspeculation edge, and is
//!   correctly cross-referenced (§3.1.1).
//! * **LINT-EQ8-LEAK** — no value defined inside a region is live into its
//!   handler (equation 8's precondition: the handler's live-set may only
//!   contain state from *before* the region, since region-local state is
//!   lost on misspeculation; this strengthens Theorem 3.1 from direct uses
//!   to all live flow-through).
//! * **LINT-EQ8-EXT** — the handler body consists solely of width
//!   extensions of slice (8-bit) values and resumes wide code via an
//!   unconditional branch out of the region (equation 8: the handler
//!   re-widens all slice-resident live state, and nothing else).
//! * **LINT-PREP-LS** — region blocks are load-only or store-only
//!   (equation 4), so re-execution cannot observe a partial store.
//! * **LINT-PREP-IDEM** — a region block containing speculative
//!   instructions holds only idempotent instructions (equation 5).
//! * **LINT-PREP-PHI** — φ-nodes are not mixed with speculative
//!   instructions in region blocks (equation 6).
//!
//! All diagnostics share the [`Diag`] format with the SIR verifier, the
//! SMIR verifier and the emit-layout checker.

use crate::diag::Diag;
use crate::dom::{def_blocks, DomTree};
use crate::func::Function;
use crate::inst::{Inst, Terminator};
use crate::liveness::Liveness;
use crate::module::Module;
use crate::types::{BlockId, Width};
use crate::verify::VerifyError;
use std::collections::HashSet;

/// Pass name stamped on diagnostics produced by bitlint.
pub const PASS: &str = "bitlint";

/// Lints every function of `m`.
///
/// # Errors
/// Returns all violations across the module.
pub fn lint_module(m: &Module) -> Result<(), VerifyError> {
    let mut problems = Vec::new();
    for f in &m.funcs {
        problems.extend(lint_function(f));
    }
    VerifyError::check(problems)
}

/// Lints a single function, returning all violations.
pub fn lint_function(f: &Function) -> Vec<Diag> {
    let mut diags = Vec::new();
    let dt = DomTree::compute(f);
    let defs = def_blocks(f);
    let lv = Liveness::compute(f);

    check_cover(f, &dt, &mut diags);
    for (ri, r) in f.regions.iter().enumerate() {
        let members: HashSet<BlockId> = r.blocks.iter().copied().collect();
        check_handler_leak(f, ri, r.handler, &members, &defs, &lv, &mut diags);
        check_handler_extends(f, ri, r.handler, &members, &mut diags);
        for &b in &r.blocks {
            check_prep(f, b, &mut diags);
        }
    }
    diags
}

fn diag(f: &Function, rule: &'static str, loc: impl ToString, msg: impl Into<String>) -> Diag {
    Diag::new(rule, PASS, &f.name, loc, msg)
}

/// LINT-COVER: speculative instructions are dominated by a covering region
/// entry with a live handler.
fn check_cover(f: &Function, dt: &DomTree, diags: &mut Vec<Diag>) {
    for b in f.block_ids() {
        let has_spec = f.block(b).insts.iter().any(|&v| f.inst(v).is_speculative());
        if !has_spec {
            continue;
        }
        let Some(rid) = f.block(b).region else {
            diags.push(diag(
                f,
                "LINT-COVER",
                b,
                "speculative instruction not covered by any region",
            ));
            continue;
        };
        let r = &f.regions[rid.index()];
        if !dt.dominates(r.entry(), b) {
            diags.push(diag(
                f,
                "LINT-COVER",
                b,
                format!(
                    "region sr{} entry {} does not dominate {b}",
                    rid.index(),
                    r.entry()
                ),
            ));
        }
        if r.handler.index() >= f.blocks.len() {
            diags.push(diag(
                f,
                "LINT-COVER",
                b,
                format!("region sr{} handler out of range", rid.index()),
            ));
            continue;
        }
        if f.block(r.handler).handler_for != Some(rid) {
            diags.push(diag(
                f,
                "LINT-COVER",
                r.handler,
                format!(
                    "handler {} not cross-referenced to sr{}",
                    r.handler,
                    rid.index()
                ),
            ));
        }
        if dt.is_reachable(b) && !dt.is_reachable(r.handler) {
            diags.push(diag(
                f,
                "LINT-COVER",
                r.handler,
                format!(
                    "handler {} of sr{} unreachable on the misspeculation edge",
                    r.handler,
                    rid.index()
                ),
            ));
        }
    }
}

/// LINT-EQ8-LEAK: region-defined state must not be live into the handler.
fn check_handler_leak(
    f: &Function,
    ri: usize,
    handler: BlockId,
    members: &HashSet<BlockId>,
    defs: &std::collections::HashMap<crate::types::ValueId, BlockId>,
    lv: &Liveness,
    diags: &mut Vec<Diag>,
) {
    for &v in lv.live_in_of(handler) {
        if let Some(db) = defs.get(&v) {
            if members.contains(db) {
                diags.push(diag(
                    f,
                    "LINT-EQ8-LEAK",
                    handler,
                    format!(
                        "sr{ri}: {v} defined in region block {db} is live into handler {handler}"
                    ),
                ));
            }
        }
    }
}

/// LINT-EQ8-EXT: the handler body is exactly the re-widening of
/// slice-resident state, resuming wide code outside the region.
fn check_handler_extends(
    f: &Function,
    ri: usize,
    handler: BlockId,
    members: &HashSet<BlockId>,
    diags: &mut Vec<Diag>,
) {
    for &v in &f.block(handler).insts {
        match f.inst(v) {
            Inst::Zext { arg, .. } | Inst::Sext { arg, .. } => {
                if f.value_width(*arg) != Some(Width::W8) {
                    diags.push(diag(
                        f,
                        "LINT-EQ8-EXT",
                        handler,
                        format!("sr{ri}: handler extension {v} widens a non-slice value {arg}"),
                    ));
                }
            }
            other => diags.push(diag(
                f,
                "LINT-EQ8-EXT",
                handler,
                format!("sr{ri}: handler contains non-extension instruction {v}: {other:?}"),
            )),
        }
    }
    match &f.block(handler).term {
        Terminator::Br(t) => {
            if members.contains(t) {
                diags.push(diag(
                    f,
                    "LINT-EQ8-EXT",
                    handler,
                    format!("sr{ri}: handler resumes inside its own region at {t}"),
                ));
            }
        }
        other => diags.push(diag(
            f,
            "LINT-EQ8-EXT",
            handler,
            format!("sr{ri}: handler must end in an unconditional branch, found {other:?}"),
        )),
    }
}

/// LINT-PREP-*: CFG-preparation invariants (equations 4–6) on one region
/// block.
fn check_prep(f: &Function, b: BlockId, diags: &mut Vec<Diag>) {
    let blk = f.block(b);
    let has_spec = blk.insts.iter().any(|&v| f.inst(v).is_speculative());
    let mut has_load = false;
    let mut has_store = false;
    for &v in &blk.insts {
        match f.inst(v) {
            Inst::Load { .. } => has_load = true,
            Inst::Store { .. } => has_store = true,
            _ => {}
        }
        if has_spec && !f.inst(v).is_idempotent() {
            diags.push(diag(
                f,
                "LINT-PREP-IDEM",
                b,
                format!("non-idempotent {v} shares a speculative block"),
            ));
        }
        if has_spec && f.inst(v).is_phi() {
            diags.push(diag(
                f,
                "LINT-PREP-PHI",
                b,
                format!("φ {v} mixed with speculative instructions"),
            ));
        }
    }
    if has_load && has_store {
        diags.push(diag(
            f,
            "LINT-PREP-LS",
            b,
            "region block contains both a load and a store",
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::BinOp;

    /// Builds `entry → r → x` with region {r}, handler h, where r holds one
    /// speculative add over a W8 const defined in entry. As in real
    /// squeezer output, the join block merges the speculative-path value
    /// with the handler-path fallback through a φ, so no region-defined
    /// value is live into the handler.
    fn spec_fn() -> Function {
        let mut f = Function::new("s", vec![], Some(Width::W8));
        let r = f.add_block();
        let h = f.add_block();
        let x = f.add_block();
        let c = f.append_inst(
            f.entry,
            Inst::Const {
                width: Width::W8,
                value: 1,
            },
        );
        f.block_mut(f.entry).term = Terminator::Br(r);
        let v = f.append_inst(
            r,
            Inst::Bin {
                op: BinOp::Add,
                width: Width::W8,
                lhs: c,
                rhs: c,
                speculative: true,
            },
        );
        f.block_mut(r).term = Terminator::Br(x);
        f.block_mut(h).term = Terminator::Br(x);
        let m = f.append_inst(
            x,
            Inst::Phi {
                width: Width::W8,
                incomings: vec![(r, v), (h, c)],
            },
        );
        f.block_mut(x).term = Terminator::Ret(Some(m));
        f.add_region(vec![r], h);
        f
    }

    #[test]
    fn sound_region_passes() {
        let f = spec_fn();
        let diags = lint_function(&f);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn uncovered_speculation_flagged() {
        let mut f = spec_fn();
        // Mutation: delete the region and clear the block marks.
        f.regions.clear();
        for b in f.block_ids().collect::<Vec<_>>() {
            f.block_mut(b).region = None;
            f.block_mut(b).handler_for = None;
        }
        let diags = lint_function(&f);
        assert!(diags.iter().any(|d| d.rule == "LINT-COVER"), "{diags:?}");
    }

    #[test]
    fn region_defined_value_live_into_handler_flagged() {
        let mut f = spec_fn();
        let h = f.regions[0].handler;
        let v = f.block(BlockId(1)).insts[0]; // the speculative add in r
                                              // Mutation: handler re-widens the region-defined value.
        let z = f.add_inst(Inst::Zext {
            to: Width::W32,
            arg: v,
        });
        f.block_mut(h).insts.push(z);
        let diags = lint_function(&f);
        assert!(diags.iter().any(|d| d.rule == "LINT-EQ8-LEAK"), "{diags:?}");
    }

    #[test]
    fn non_extension_handler_body_flagged() {
        let mut f = spec_fn();
        let h = f.regions[0].handler;
        let c = f.append_inst(
            f.entry,
            Inst::Const {
                width: Width::W8,
                value: 3,
            },
        );
        // Reorder: the const belongs to entry, but the *handler* gets an add.
        let a = f.add_inst(Inst::Bin {
            op: BinOp::Add,
            width: Width::W8,
            lhs: c,
            rhs: c,
            speculative: false,
        });
        f.block_mut(h).insts.push(a);
        let diags = lint_function(&f);
        assert!(diags.iter().any(|d| d.rule == "LINT-EQ8-EXT"), "{diags:?}");
    }

    #[test]
    fn load_store_mix_in_region_flagged() {
        let mut f = spec_fn();
        let r = BlockId(1);
        let addr = f.append_inst(
            f.entry,
            Inst::Const {
                width: Width::W32,
                value: 64,
            },
        );
        let wv = f.append_inst(
            f.entry,
            Inst::Const {
                width: Width::W32,
                value: 9,
            },
        );
        let ld = f.add_inst(Inst::Load {
            width: Width::W32,
            addr,
            speculative: false,
            volatile: false,
        });
        let st = f.add_inst(Inst::Store {
            width: Width::W32,
            addr,
            value: wv,
            volatile: false,
        });
        f.block_mut(r).insts.push(ld);
        f.block_mut(r).insts.push(st);
        let diags = lint_function(&f);
        assert!(diags.iter().any(|d| d.rule == "LINT-PREP-LS"), "{diags:?}");
    }

    #[test]
    fn phi_mixed_with_speculation_flagged() {
        let mut f = spec_fn();
        let r = BlockId(1);
        let c = f.block(f.entry).insts[0];
        let phi = f.add_inst(Inst::Phi {
            width: Width::W8,
            incomings: vec![(f.entry, c)],
        });
        f.block_mut(r).insts.insert(0, phi);
        let diags = lint_function(&f);
        assert!(diags.iter().any(|d| d.rule == "LINT-PREP-PHI"), "{diags:?}");
    }
}
