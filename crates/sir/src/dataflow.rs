//! A small reusable dataflow framework.
//!
//! Analyses in the pipeline (known-bits narrowing in `opt`, def-before-use
//! checking over machine IR in `backend`, and the `bitlint` region checks)
//! share the same shape: a monotone transfer function iterated over a CFG to
//! a fixpoint, forward or backward, with an optional widening hook to force
//! termination on growing lattices. This module factors that shape out so
//! each analysis only supplies its lattice and transfer.
//!
//! The framework is deliberately index-based: a [`Graph`] exposes its nodes
//! as `0..num_nodes()`, which lets SIR functions, machine-IR functions and
//! any other CFG plug in without adapters beyond a trait impl.

/// Direction of the dataflow iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from predecessors to successors.
    Forward,
    /// Facts flow from successors to predecessors.
    Backward,
}

/// A directed graph with a distinguished entry node.
pub trait Graph {
    /// Number of nodes; node ids are `0..num_nodes()`.
    fn num_nodes(&self) -> usize;
    /// The entry node.
    fn entry(&self) -> usize;
    /// Successor node ids of `n` (including speculative/handler edges where
    /// the graph has them — the analysis sees the conservative CFG).
    fn succs(&self, n: usize) -> Vec<usize>;
}

/// A dataflow analysis over graph `G`.
pub trait Analysis<G: Graph> {
    /// The lattice element attached to each node.
    type Fact: Clone + PartialEq;

    /// Iteration direction.
    fn direction(&self) -> Direction;

    /// The fact entering the graph: at the entry node for forward analyses,
    /// at exit nodes (no successors) for backward analyses.
    fn boundary(&self, g: &G) -> Self::Fact;

    /// The optimistic initial fact for every node.
    fn init(&self, g: &G, n: usize) -> Self::Fact;

    /// Joins `from` into `into`; returns true when `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;

    /// The node transfer function: computes the output fact from the input.
    fn transfer(&self, g: &G, n: usize, input: &Self::Fact) -> Self::Fact;

    /// Widening hook, called after each transfer with the previous output
    /// (`old`), the freshly computed output (`new`, mutable) and the number
    /// of times this node has been processed. Analyses over unbounded-height
    /// lattices jump still-changing entries to top here; the default is a
    /// no-op.
    fn widen(&self, _g: &G, _n: usize, _old: &Self::Fact, _new: &mut Self::Fact, _visits: u32) {}
}

/// The fixpoint: per-node input and output facts.
///
/// For forward analyses `input[n]` is the fact at block entry and
/// `output[n]` the fact at block exit; for backward analyses the roles are
/// mirrored (`input[n]` is the fact at block exit).
#[derive(Debug, Clone)]
pub struct Solution<F> {
    pub input: Vec<F>,
    pub output: Vec<F>,
}

/// Runs `a` over `g` to a fixpoint with a worklist.
pub fn solve<G: Graph, A: Analysis<G>>(g: &G, a: &A) -> Solution<A::Fact> {
    let n = g.num_nodes();
    let forward = a.direction() == Direction::Forward;
    // Edge lists in iteration direction: `flow_preds[n]` are the nodes whose
    // output feeds n's input.
    let mut flow_preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut flow_succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for u in 0..n {
        for v in g.succs(u) {
            let (from, to) = if forward { (u, v) } else { (v, u) };
            flow_preds[to].push(from);
            flow_succs[from].push(to);
        }
    }
    // Boundary nodes: the entry (forward) or every exit (backward).
    let boundary: Vec<bool> = (0..n)
        .map(|i| {
            if forward {
                i == g.entry()
            } else {
                g.succs(i).is_empty()
            }
        })
        .collect();

    let mut input: Vec<A::Fact> = (0..n).map(|i| a.init(g, i)).collect();
    let mut output: Vec<A::Fact> = (0..n).map(|i| a.init(g, i)).collect();
    let mut visits: Vec<u32> = vec![0; n];
    let mut queued: Vec<bool> = vec![true; n];
    // Seed the worklist with every node (unreachable nodes settle on their
    // init facts after one transfer).
    let mut work: std::collections::VecDeque<usize> = (0..n).collect();
    while let Some(u) = work.pop_front() {
        queued[u] = false;
        visits[u] += 1;
        // input[u] = join of boundary (if boundary node) and flow-preds.
        let mut inp = a.init(g, u);
        if boundary[u] {
            a.join(&mut inp, &a.boundary(g));
        }
        for &p in &flow_preds[u] {
            a.join(&mut inp, &output[p]);
        }
        let mut out = a.transfer(g, u, &inp);
        a.widen(g, u, &output[u], &mut out, visits[u]);
        input[u] = inp;
        if out != output[u] {
            output[u] = out;
            for &s in &flow_succs[u] {
                if !queued[s] {
                    queued[s] = true;
                    work.push_back(s);
                }
            }
        }
    }
    Solution { input, output }
}

/// [`Graph`] over a SIR function's CFG, with misspeculation (handler) edges
/// included so facts reach handlers conservatively.
impl Graph for crate::func::Function {
    fn num_nodes(&self) -> usize {
        self.blocks.len()
    }

    fn entry(&self) -> usize {
        self.entry.index()
    }

    fn succs(&self, n: usize) -> Vec<usize> {
        self.spec_succs(crate::types::BlockId(n as u32))
            .into_iter()
            .map(|b| b.index())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A literal adjacency-list graph for framework tests.
    struct Adj {
        entry: usize,
        succs: Vec<Vec<usize>>,
    }

    impl Graph for Adj {
        fn num_nodes(&self) -> usize {
            self.succs.len()
        }
        fn entry(&self) -> usize {
            self.entry
        }
        fn succs(&self, n: usize) -> Vec<usize> {
            self.succs[n].clone()
        }
    }

    /// Forward reachability: a node's fact is true iff it is reachable from
    /// the entry.
    struct Reach;

    impl Analysis<Adj> for Reach {
        type Fact = bool;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary(&self, _g: &Adj) -> bool {
            true
        }
        fn init(&self, _g: &Adj, _n: usize) -> bool {
            false
        }
        fn join(&self, into: &mut bool, from: &bool) -> bool {
            let old = *into;
            *into |= *from;
            *into != old
        }
        fn transfer(&self, _g: &Adj, _n: usize, input: &bool) -> bool {
            *input
        }
    }

    /// Backward "can reach an exit" over the same graphs.
    struct ReachesExit;

    impl Analysis<Adj> for ReachesExit {
        type Fact = bool;
        fn direction(&self) -> Direction {
            Direction::Backward
        }
        fn boundary(&self, _g: &Adj) -> bool {
            true
        }
        fn init(&self, _g: &Adj, _n: usize) -> bool {
            false
        }
        fn join(&self, into: &mut bool, from: &bool) -> bool {
            let old = *into;
            *into |= *from;
            *into != old
        }
        fn transfer(&self, _g: &Adj, _n: usize, input: &bool) -> bool {
            *input
        }
    }

    /// A counter analysis whose lattice would climb forever without the
    /// widening hook.
    struct Count {
        cutoff: u32,
    }

    impl Analysis<Adj> for Count {
        type Fact = u64;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary(&self, _g: &Adj) -> u64 {
            0
        }
        fn init(&self, _g: &Adj, _n: usize) -> u64 {
            0
        }
        fn join(&self, into: &mut u64, from: &u64) -> bool {
            let old = *into;
            *into = (*into).max(*from);
            *into != old
        }
        fn transfer(&self, _g: &Adj, _n: usize, input: &u64) -> u64 {
            input.saturating_add(1)
        }
        fn widen(&self, _g: &Adj, _n: usize, old: &u64, new: &mut u64, visits: u32) {
            if visits > self.cutoff && new != old {
                *new = u64::MAX;
            }
        }
    }

    #[test]
    fn forward_reachability_ignores_disconnected_nodes() {
        // 0 -> 1 -> 2, node 3 disconnected.
        let g = Adj {
            entry: 0,
            succs: vec![vec![1], vec![2], vec![], vec![2]],
        };
        let s = solve(&g, &Reach);
        assert_eq!(s.output, vec![true, true, true, false]);
    }

    #[test]
    fn backward_reaches_exit_through_loop() {
        // 0 -> 1 <-> 2, 1 -> 3(exit); all can reach the exit.
        let g = Adj {
            entry: 0,
            succs: vec![vec![1], vec![2, 3], vec![1], vec![]],
        };
        let s = solve(&g, &ReachesExit);
        assert_eq!(s.output, vec![true, true, true, true]);
    }

    #[test]
    fn widening_forces_termination_on_a_loop() {
        // 0 -> 1 -> 1 (self loop): the count climbs until widening fires.
        let g = Adj {
            entry: 0,
            succs: vec![vec![1], vec![1]],
        };
        let s = solve(&g, &Count { cutoff: 8 });
        assert_eq!(s.output[1], u64::MAX);
        // Node 0 is outside the loop: no widening, exact count.
        assert_eq!(s.output[0], 1);
    }

    #[test]
    fn sir_function_graph_includes_handler_edges() {
        use crate::inst::Terminator;
        let mut f = crate::func::Function::new("g", vec![], None);
        let r = f.add_block();
        let h = f.add_block();
        f.block_mut(f.entry).term = Terminator::Br(r);
        f.block_mut(r).term = Terminator::Ret(None);
        f.block_mut(h).term = Terminator::Ret(None);
        f.add_region(vec![r], h);
        assert_eq!(Graph::succs(&f, r.index()), vec![h.index()]);
        let s = solve(&f, &ReachSir);
        assert!(
            s.output[h.index()],
            "handler must be reachable via spec edge"
        );
    }

    /// Reach over SIR functions (same lattice as `Reach`).
    struct ReachSir;

    impl Analysis<crate::func::Function> for ReachSir {
        type Fact = bool;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary(&self, _g: &crate::func::Function) -> bool {
            true
        }
        fn init(&self, _g: &crate::func::Function, _n: usize) -> bool {
            false
        }
        fn join(&self, into: &mut bool, from: &bool) -> bool {
            let old = *into;
            *into |= *from;
            *into != old
        }
        fn transfer(&self, _g: &crate::func::Function, _n: usize, input: &bool) -> bool {
            *input
        }
    }
}
