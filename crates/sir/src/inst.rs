//! Instruction and terminator definitions.

use crate::types::{BlockId, FuncId, GlobalId, ValueId, Width};
use std::fmt;

/// Binary integer operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Udiv,
    Urem,
    Sdiv,
    Srem,
    And,
    Or,
    Xor,
    Shl,
    Lshr,
    Ashr,
}

impl BinOp {
    /// Whether the BITSPEC ISA provides an 8-bit speculative variant of this
    /// operation (`Speculative?` in §3.2.2 / Table 1). Multiplication,
    /// division and remainder have no slice-wide variant.
    pub fn has_speculative_form(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Sub
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::Shl
                | BinOp::Lshr
                | BinOp::Ashr
        )
    }

    /// Whether the op is a division or remainder (can trap on zero divisor).
    pub fn is_div_rem(self) -> bool {
        matches!(self, BinOp::Udiv | BinOp::Urem | BinOp::Sdiv | BinOp::Srem)
    }

    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Udiv => "udiv",
            BinOp::Urem => "urem",
            BinOp::Sdiv => "sdiv",
            BinOp::Srem => "srem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Lshr => "lshr",
            BinOp::Ashr => "ashr",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Comparison condition codes for [`Inst::Icmp`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cc {
    Eq,
    Ne,
    Ult,
    Ule,
    Ugt,
    Uge,
    Slt,
    Sle,
    Sgt,
    Sge,
}

impl Cc {
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cc::Eq => "eq",
            Cc::Ne => "ne",
            Cc::Ult => "ult",
            Cc::Ule => "ule",
            Cc::Ugt => "ugt",
            Cc::Uge => "uge",
            Cc::Slt => "slt",
            Cc::Sle => "sle",
            Cc::Sgt => "sgt",
            Cc::Sge => "sge",
        }
    }

    /// The condition with operands swapped (`a cc b` ⇔ `b cc.swapped() a`).
    pub fn swapped(self) -> Cc {
        match self {
            Cc::Eq => Cc::Eq,
            Cc::Ne => Cc::Ne,
            Cc::Ult => Cc::Ugt,
            Cc::Ule => Cc::Uge,
            Cc::Ugt => Cc::Ult,
            Cc::Uge => Cc::Ule,
            Cc::Slt => Cc::Sgt,
            Cc::Sle => Cc::Sge,
            Cc::Sgt => Cc::Slt,
            Cc::Sge => Cc::Sle,
        }
    }

    /// The negated condition (`!(a cc b)` ⇔ `a cc.negated() b`).
    pub fn negated(self) -> Cc {
        match self {
            Cc::Eq => Cc::Ne,
            Cc::Ne => Cc::Eq,
            Cc::Ult => Cc::Uge,
            Cc::Ule => Cc::Ugt,
            Cc::Ugt => Cc::Ule,
            Cc::Uge => Cc::Ult,
            Cc::Slt => Cc::Sge,
            Cc::Sle => Cc::Sgt,
            Cc::Sgt => Cc::Sle,
            Cc::Sge => Cc::Slt,
        }
    }

    /// Whether the comparison interprets its operands as signed.
    pub fn is_signed(self) -> bool {
        matches!(self, Cc::Slt | Cc::Sle | Cc::Sgt | Cc::Sge)
    }

    /// Evaluates the comparison on `w`-wide values stored zero-extended.
    pub fn eval(self, w: Width, a: u64, b: u64) -> bool {
        let (a, b) = (w.truncate(a), w.truncate(b));
        match self {
            Cc::Eq => a == b,
            Cc::Ne => a != b,
            Cc::Ult => a < b,
            Cc::Ule => a <= b,
            Cc::Ugt => a > b,
            Cc::Uge => a >= b,
            Cc::Slt => w.sext_to_64(a) < w.sext_to_64(b),
            Cc::Sle => w.sext_to_64(a) <= w.sext_to_64(b),
            Cc::Sgt => w.sext_to_64(a) > w.sext_to_64(b),
            Cc::Sge => w.sext_to_64(a) >= w.sext_to_64(b),
        }
    }
}

impl fmt::Display for Cc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A SIR instruction. Each instruction defines at most one SSA value,
/// identified by its [`ValueId`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Inst {
    /// The `i`-th function parameter. Always at the start of the entry block.
    Param { index: u32, width: Width },
    /// An integer constant.
    Const { width: Width, value: u64 },
    /// Address of a module global.
    GlobalAddr { global: GlobalId },
    /// A stack allocation of `size` bytes; yields the (W32) address.
    Alloca { size: u32 },
    /// Binary operation. `speculative` marks reduced-bitwidth operations
    /// whose result is monitored by the hardware (§3.2.3, Table 1).
    Bin {
        op: BinOp,
        width: Width,
        lhs: ValueId,
        rhs: ValueId,
        speculative: bool,
    },
    /// Integer comparison producing a `W1` value.
    Icmp {
        cc: Cc,
        width: Width,
        lhs: ValueId,
        rhs: ValueId,
    },
    /// Zero extension.
    Zext { to: Width, arg: ValueId },
    /// Sign extension.
    Sext { to: Width, arg: ValueId },
    /// Truncation. A *speculative* truncate (Table 1) misspeculates at run
    /// time if the dropped bits are non-zero.
    Trunc {
        to: Width,
        arg: ValueId,
        speculative: bool,
    },
    /// Memory load of `width` bytes from address `addr` (a W32 value).
    /// A *speculative* load (Table 1) performs a `width`-wide access but
    /// misspeculates if the loaded value needs more than 8 bits; its result
    /// is W8.
    Load {
        width: Width,
        addr: ValueId,
        volatile: bool,
        speculative: bool,
    },
    /// Memory store.
    Store {
        width: Width,
        addr: ValueId,
        value: ValueId,
        volatile: bool,
    },
    /// `cond ? tval : fval` at `width`.
    Select {
        width: Width,
        cond: ValueId,
        tval: ValueId,
        fval: ValueId,
    },
    /// Direct call. `args` must match the callee signature.
    Call {
        callee: FuncId,
        args: Vec<ValueId>,
        ret: Option<Width>,
    },
    /// φ-node: selects the value flowing in from the executed predecessor.
    Phi {
        width: Width,
        incomings: Vec<(BlockId, ValueId)>,
    },
    /// Emits `value` to the program's observable output stream. Volatile
    /// (never idempotent); used for differential correctness checking.
    Output { value: ValueId },
}

impl Inst {
    /// The width of the value this instruction defines, if it defines one.
    pub fn result_width(&self) -> Option<Width> {
        match self {
            Inst::Param { width, .. } | Inst::Const { width, .. } => Some(*width),
            Inst::GlobalAddr { .. } | Inst::Alloca { .. } => Some(Width::W32),
            Inst::Bin { width, .. } => Some(*width),
            Inst::Icmp { .. } => Some(Width::W1),
            Inst::Zext { to, .. } | Inst::Sext { to, .. } | Inst::Trunc { to, .. } => Some(*to),
            Inst::Load {
                width, speculative, ..
            } => Some(if *speculative { Width::W8 } else { *width }),
            Inst::Store { .. } => None,
            Inst::Select { width, .. } => Some(*width),
            Inst::Call { ret, .. } => *ret,
            Inst::Phi { width, .. } => Some(*width),
            Inst::Output { .. } => None,
        }
    }

    /// Whether this instruction is a φ-node.
    pub fn is_phi(&self) -> bool {
        matches!(self, Inst::Phi { .. })
    }

    /// Whether this instruction may observe or mutate memory or I/O.
    pub fn has_side_effects(&self) -> bool {
        // A speculative instruction can trap to its region handler — a
        // control-flow effect that must survive even when the result is
        // unused (compare elision replaces the consumer with a constant
        // and relies on the producer's trap to guard the prediction).
        if self.is_speculative() {
            return true;
        }
        match self {
            Inst::Store { .. } | Inst::Call { .. } | Inst::Output { .. } => true,
            Inst::Load { volatile, .. } => *volatile,
            // Division can trap; treat as effectful for DCE purposes.
            Inst::Bin { op, .. } => op.is_div_rem(),
            _ => false,
        }
    }

    /// Whether this instruction is *idempotent* in the sense of §3.2.3:
    /// re-executing it (after partial execution of its block) observes no
    /// additional side effects. Volatile operations, calls and output are
    /// non-idempotent.
    pub fn is_idempotent(&self) -> bool {
        match self {
            Inst::Call { .. } | Inst::Output { .. } => false,
            Inst::Load { volatile, .. } => !volatile,
            Inst::Store { volatile, .. } => !volatile,
            _ => true,
        }
    }

    /// Whether this instruction carries the speculative flag.
    pub fn is_speculative(&self) -> bool {
        match self {
            Inst::Bin { speculative, .. }
            | Inst::Trunc { speculative, .. }
            | Inst::Load { speculative, .. } => *speculative,
            _ => false,
        }
    }

    /// Iterates over the value operands of this instruction.
    pub fn operands(&self) -> Vec<ValueId> {
        match self {
            Inst::Param { .. }
            | Inst::Const { .. }
            | Inst::GlobalAddr { .. }
            | Inst::Alloca { .. } => vec![],
            Inst::Bin { lhs, rhs, .. } | Inst::Icmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::Zext { arg, .. } | Inst::Sext { arg, .. } | Inst::Trunc { arg, .. } => {
                vec![*arg]
            }
            Inst::Load { addr, .. } => vec![*addr],
            Inst::Store { addr, value, .. } => vec![*addr, *value],
            Inst::Select {
                cond, tval, fval, ..
            } => vec![*cond, *tval, *fval],
            Inst::Call { args, .. } => args.clone(),
            Inst::Phi { incomings, .. } => incomings.iter().map(|(_, v)| *v).collect(),
            Inst::Output { value } => vec![*value],
        }
    }

    /// Applies `f` to every value operand in place.
    pub fn map_operands(&mut self, mut f: impl FnMut(ValueId) -> ValueId) {
        match self {
            Inst::Param { .. }
            | Inst::Const { .. }
            | Inst::GlobalAddr { .. }
            | Inst::Alloca { .. } => {}
            Inst::Bin { lhs, rhs, .. } | Inst::Icmp { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Inst::Zext { arg, .. } | Inst::Sext { arg, .. } | Inst::Trunc { arg, .. } => {
                *arg = f(*arg);
            }
            Inst::Load { addr, .. } => *addr = f(*addr),
            Inst::Store { addr, value, .. } => {
                *addr = f(*addr);
                *value = f(*value);
            }
            Inst::Select {
                cond, tval, fval, ..
            } => {
                *cond = f(*cond);
                *tval = f(*tval);
                *fval = f(*fval);
            }
            Inst::Call { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            Inst::Phi { incomings, .. } => {
                for (_, v) in incomings {
                    *v = f(*v);
                }
            }
            Inst::Output { value } => *value = f(*value),
        }
    }
}

/// Block terminators. Exactly one per block.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Terminator {
    /// Unconditional branch.
    Br(BlockId),
    /// Conditional branch on a `W1` value.
    CondBr {
        cond: ValueId,
        if_true: BlockId,
        if_false: BlockId,
    },
    /// Function return.
    Ret(Option<ValueId>),
    /// Statically unreachable point (e.g. after a diverging call).
    Unreachable,
}

impl Terminator {
    /// Branch-target successor blocks (in branch order).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br(t) => vec![*t],
            Terminator::CondBr {
                if_true, if_false, ..
            } => vec![*if_true, *if_false],
            Terminator::Ret(_) | Terminator::Unreachable => vec![],
        }
    }

    /// Applies `f` to every successor block id in place.
    pub fn map_successors(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Br(t) => *t = f(*t),
            Terminator::CondBr {
                if_true, if_false, ..
            } => {
                *if_true = f(*if_true);
                *if_false = f(*if_false);
            }
            Terminator::Ret(_) | Terminator::Unreachable => {}
        }
    }

    /// The value operands of the terminator.
    pub fn operands(&self) -> Vec<ValueId> {
        match self {
            Terminator::CondBr { cond, .. } => vec![*cond],
            Terminator::Ret(Some(v)) => vec![*v],
            _ => vec![],
        }
    }

    /// Applies `f` to every value operand in place.
    pub fn map_operands(&mut self, mut f: impl FnMut(ValueId) -> ValueId) {
        match self {
            Terminator::CondBr { cond, .. } => *cond = f(*cond),
            Terminator::Ret(Some(v)) => *v = f(*v),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cc_eval_unsigned_and_signed() {
        assert!(Cc::Ult.eval(Width::W8, 1, 2));
        assert!(!Cc::Ult.eval(Width::W8, 2, 1));
        // 0xFF is -1 signed at W8 but 255 unsigned.
        assert!(Cc::Slt.eval(Width::W8, 0xFF, 0));
        assert!(Cc::Ugt.eval(Width::W8, 0xFF, 0));
        assert!(Cc::Eq.eval(Width::W8, 0x1FF, 0xFF)); // truncation before compare
    }

    #[test]
    fn cc_negation_and_swap_are_involutions() {
        for cc in [
            Cc::Eq,
            Cc::Ne,
            Cc::Ult,
            Cc::Ule,
            Cc::Ugt,
            Cc::Uge,
            Cc::Slt,
            Cc::Sle,
            Cc::Sgt,
            Cc::Sge,
        ] {
            assert_eq!(cc.negated().negated(), cc);
            assert_eq!(cc.swapped().swapped(), cc);
            // semantic checks
            for (a, b) in [(3u64, 5u64), (5, 3), (4, 4), (0xFF, 1)] {
                let w = Width::W8;
                assert_eq!(cc.eval(w, a, b), !cc.negated().eval(w, a, b));
                assert_eq!(cc.eval(w, a, b), cc.swapped().eval(w, b, a));
            }
        }
    }

    #[test]
    fn speculative_forms_exclude_mul_div() {
        assert!(BinOp::Add.has_speculative_form());
        assert!(BinOp::Xor.has_speculative_form());
        assert!(!BinOp::Mul.has_speculative_form());
        assert!(!BinOp::Udiv.has_speculative_form());
    }

    #[test]
    fn operand_mapping_roundtrip() {
        let mut i = Inst::Bin {
            op: BinOp::Add,
            width: Width::W32,
            lhs: ValueId(1),
            rhs: ValueId(2),
            speculative: false,
        };
        i.map_operands(|v| ValueId(v.0 + 10));
        assert_eq!(i.operands(), vec![ValueId(11), ValueId(12)]);
    }

    #[test]
    fn idempotency_classification() {
        assert!(Inst::Bin {
            op: BinOp::Add,
            width: Width::W32,
            lhs: ValueId(0),
            rhs: ValueId(1),
            speculative: false
        }
        .is_idempotent());
        assert!(!Inst::Output { value: ValueId(0) }.is_idempotent());
        assert!(!Inst::Call {
            callee: FuncId(0),
            args: vec![],
            ret: None
        }
        .is_idempotent());
        assert!(!Inst::Load {
            width: Width::W32,
            addr: ValueId(0),
            volatile: true,
            speculative: false
        }
        .is_idempotent());
    }
}
