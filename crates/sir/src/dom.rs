//! Dominator tree computation (Cooper–Harvey–Kennedy).

use crate::func::Function;
use crate::types::{BlockId, ValueId};
use std::collections::HashMap;

/// The dominator tree of a function's CFG (branch + handler edges).
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator of each block (`idom[entry] == entry`);
    /// `None` for unreachable blocks.
    pub idom: Vec<Option<BlockId>>,
    /// RPO index of each reachable block.
    rpo_index: Vec<Option<usize>>,
    /// RPO ordering used for the fixpoint.
    pub rpo: Vec<BlockId>,
}

impl DomTree {
    /// Computes the dominator tree of `f`.
    pub fn compute(f: &Function) -> DomTree {
        let rpo = f.rpo();
        let n = f.blocks.len();
        let mut rpo_index = vec![None; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = Some(i);
        }
        // Predecessors along traversal edges (branch + handler edges), which
        // matches the successors used by `Function::rpo`.
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for b in f.block_ids() {
            for s in f.spec_succs(b) {
                preds[s.index()].push(b);
            }
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[f.entry.index()] = Some(f.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => Self::intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree {
            idom,
            rpo_index,
            rpo,
        }
    }

    fn intersect(
        idom: &[Option<BlockId>],
        rpo_index: &[Option<usize>],
        mut a: BlockId,
        mut b: BlockId,
    ) -> BlockId {
        let idx = |x: BlockId| rpo_index[x.index()].expect("reachable");
        while a != b {
            while idx(a) > idx(b) {
                a = idom[a.index()].expect("reachable");
            }
            while idx(b) > idx(a) {
                b = idom[b.index()].expect("reachable");
            }
        }
        a
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut x = b;
        loop {
            if x == a {
                return true;
            }
            match self.idom[x.index()] {
                Some(i) if i != x => x = i,
                _ => return false,
            }
        }
    }

    /// Whether block `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.index()].is_some()
    }
}

/// Maps every value to its defining block. Values not placed in any block
/// (detached) are absent.
pub fn def_blocks(f: &Function) -> HashMap<ValueId, BlockId> {
    let mut m = HashMap::new();
    for b in f.block_ids() {
        for &v in &f.block(b).insts {
            m.insert(v, b);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Inst, Terminator};
    use crate::types::Width;

    /// Diamond: e -> a, b; a,b -> m.
    fn diamond() -> Function {
        let mut f = Function::new("d", vec![Width::W1], None);
        let e = f.entry;
        let c = f.param_value(0);
        let a = f.add_block();
        let b = f.add_block();
        let m = f.add_block();
        f.block_mut(e).term = Terminator::CondBr {
            cond: c,
            if_true: a,
            if_false: b,
        };
        f.block_mut(a).term = Terminator::Br(m);
        f.block_mut(b).term = Terminator::Br(m);
        f.block_mut(m).term = Terminator::Ret(None);
        f
    }

    #[test]
    fn diamond_idoms() {
        let f = diamond();
        let dt = DomTree::compute(&f);
        let e = f.entry;
        assert_eq!(dt.idom[1], Some(e));
        assert_eq!(dt.idom[2], Some(e));
        assert_eq!(dt.idom[3], Some(e)); // merge dominated by entry, not a or b
        assert!(dt.dominates(e, BlockId(3)));
        assert!(!dt.dominates(BlockId(1), BlockId(3)));
        assert!(dt.dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn unreachable_block_has_no_idom() {
        let mut f = diamond();
        let dead = f.add_block();
        f.block_mut(dead).term = Terminator::Ret(None);
        let dt = DomTree::compute(&f);
        assert!(dt.idom[dead.index()].is_none());
        assert!(!dt.is_reachable(dead));
    }

    #[test]
    fn def_block_map_covers_placed_values() {
        let mut f = diamond();
        let m = BlockId(3);
        let v = f.append_inst(
            m,
            Inst::Const {
                width: Width::W8,
                value: 1,
            },
        );
        let map = def_blocks(&f);
        assert_eq!(map[&v], m);
        assert_eq!(map[&f.param_value(0)], f.entry);
    }
}
