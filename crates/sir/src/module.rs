//! Modules and globals.

use crate::func::Function;
use crate::types::{FuncId, GlobalId};

/// A module global: a named, aligned byte array with optional initial data.
///
/// Globals live at statically assigned addresses in the simulated flat
/// address space; SIR code references them via [`crate::Inst::GlobalAddr`].
#[derive(Clone, Debug)]
pub struct Global {
    pub name: String,
    /// Total size in bytes.
    pub size: u32,
    /// Initial contents; zero-filled to `size` if shorter.
    pub init: Vec<u8>,
    /// Required alignment in bytes (power of two).
    pub align: u32,
}

/// A SIR module: functions plus globals.
#[derive(Clone, Debug, Default)]
pub struct Module {
    pub name: String,
    pub funcs: Vec<Function>,
    pub globals: Vec<Global>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            funcs: Vec::new(),
            globals: Vec::new(),
        }
    }

    /// Adds a function, returning its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(f);
        id
    }

    /// Adds a zero-initialized global of `size` bytes.
    pub fn add_global(&mut self, name: impl Into<String>, size: u32, align: u32) -> GlobalId {
        self.add_global_init(name, size, align, Vec::new())
    }

    /// Adds a global with initial data.
    ///
    /// # Panics
    /// Panics if `init` is longer than `size` or `align` is not a power of two.
    pub fn add_global_init(
        &mut self,
        name: impl Into<String>,
        size: u32,
        align: u32,
        init: Vec<u8>,
    ) -> GlobalId {
        assert!(init.len() <= size as usize, "global initializer too large");
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(Global {
            name: name.into(),
            size,
            init,
            align,
        });
        id
    }

    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Accessor for a function.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Mutable accessor for a function.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Accessor for a global.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    /// Iterator over function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> {
        (0..self.funcs.len() as u32).map(FuncId)
    }

    /// Total static size (non-φ instructions) across all functions.
    pub fn static_size(&self) -> usize {
        self.funcs.iter().map(|f| f.static_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Width;

    #[test]
    fn module_add_and_lookup() {
        let mut m = Module::new("m");
        let f = Function::new("main", vec![], None);
        let id = m.add_function(f);
        assert_eq!(m.func_by_name("main"), Some(id));
        assert_eq!(m.func_by_name("nope"), None);
        assert_eq!(m.func(id).name, "main");
    }

    #[test]
    fn globals_with_init() {
        let mut m = Module::new("m");
        let g = m.add_global_init("table", 16, 4, vec![1, 2, 3]);
        assert_eq!(m.global(g).size, 16);
        assert_eq!(m.global(g).init, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "global initializer too large")]
    fn oversized_init_panics() {
        let mut m = Module::new("m");
        m.add_global_init("g", 2, 1, vec![0; 3]);
    }

    #[test]
    fn static_size_counts_terminators() {
        let mut m = Module::new("m");
        let f = Function::new("f", vec![Width::W32], None);
        m.add_function(f);
        // one param + one terminator, params are not φ
        assert_eq!(m.static_size(), 2);
    }
}
