//! # SIR — Speculative Intermediate Representation
//!
//! The compiler IR for the BITSPEC reproduction (§3.1 of the paper). SIR is a
//! typed, SSA-form integer IR modelled on LLVM IR, extended with
//! *speculative regions*: single-entry single-exit sequences of basic blocks
//! that carry a *handler* block invoked if and only if an instruction inside
//! the region misspeculates.
//!
//! The crate provides:
//!
//! * the IR data structures ([`Module`], [`Function`], [`Inst`], …),
//! * a convenient [`builder::FunctionBuilder`],
//! * CFG analyses (predecessors/successors, [`dom`]inators, [`liveness`],
//!   natural [`loops`]),
//! * a structural + semantic [`verify`]er that also checks the speculative
//!   region well-formedness rules of §3.1.1 (including Theorem 3.1),
//! * a human-readable [printer](mod@print) used by tests and debugging, and
//! * the [`pass`] infrastructure shared by every pipeline layer: the
//!   [`pass::SirPass`] trait, the instrumenting [`pass::Tracer`]
//!   (per-pass wall time, IR deltas, fingerprints, print-after dumps,
//!   post-pass verification policy) and structural IR fingerprints.
//!
//! ```
//! use sir::builder::FunctionBuilder;
//! use sir::{Module, Width, BinOp};
//!
//! let mut m = Module::new("demo");
//! let mut b = FunctionBuilder::new("add1", vec![Width::W32], Some(Width::W32));
//! let x = b.param(0);
//! let one = b.iconst(Width::W32, 1);
//! let y = b.bin(BinOp::Add, Width::W32, x, one);
//! b.ret(Some(y));
//! m.add_function(b.finish());
//! assert!(sir::verify::verify_module(&m).is_ok());
//! ```

pub mod bitlint;
pub mod builder;
pub mod dataflow;
pub mod diag;
pub mod dom;
pub mod func;
pub mod inst;
pub mod liveness;
pub mod loops;
pub mod module;
pub mod pass;
pub mod print;
pub mod types;
pub mod verify;

pub use diag::Diag;
pub use func::{Block, Function, Region};
pub use inst::{BinOp, Cc, Inst, Terminator};
pub use module::{Global, Module};
pub use types::{BlockId, FuncId, GlobalId, RegionId, ValueId, Width};
