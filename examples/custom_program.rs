//! Building a program against the layered APIs directly: construct SIR
//! with the builder (no mini-C), run the interpreter, then drive the
//! back-end and simulator by hand — the paper's running example from §3.
//!
//! ```sh
//! cargo run --release -p bitspec --example custom_program
//! ```

use sir::builder::FunctionBuilder;
use sir::{BinOp, Cc, Module, Width};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // §3's running example:  x = 0; do { x += 1; } while (x <= 255);
    let mut module = Module::new("running-example");
    let mut b = FunctionBuilder::new("main", vec![], None);
    let zero = b.iconst(Width::W32, 0);
    let body = b.new_block();
    let exit = b.new_block();
    b.br(body);
    b.switch_to(body);
    let x0 = b.phi(Width::W32, vec![]);
    let one = b.iconst(Width::W32, 1);
    let x1 = b.bin(BinOp::Add, Width::W32, x0, one);
    let limit = b.iconst(Width::W32, 255);
    let c = b.icmp(Cc::Ule, Width::W32, x1, limit);
    b.cond_br(c, body, exit);
    let entry = b.func().entry;
    b.set_phi_incomings(x0, vec![(entry, zero), (body, x1)]);
    b.switch_to(exit);
    b.output(x1);
    b.ret(None);
    module.add_function(b.finish());
    sir::verify::verify_module(&module)?;
    println!("--- SIR ---\n{}", sir::print::print_module(&module));

    // Profile it (the run sees x in 1..=256: 1-9 required bits).
    let mut interp = interp::Interpreter::new(&module);
    interp.enable_profiling();
    let r = interp.run("main", &[])?;
    println!("interpreter output: {:?}", r.outputs);
    let profile = interp.take_profile().unwrap();

    // Squeeze with the AVG heuristic (the add's average requirement is
    // 8 bits, so it is narrowed and the final 255 -> 256 step must
    // misspeculate, exactly as the paper's §3 walkthrough shows).
    let mut squeezed = module.clone();
    let report = opt::squeeze_module(
        &mut squeezed,
        &profile,
        &opt::SqueezeConfig {
            heuristic: interp::Heuristic::Avg,
            ..Default::default()
        },
    );
    println!(
        "squeezer: narrowed={} regions={} spec_truncs={}",
        report.narrowed, report.regions, report.spec_truncs
    );
    println!(
        "--- squeezed SIR ---\n{}",
        sir::print::print_module(&squeezed)
    );

    // Lower to machine code and run on the simulated BITSPEC processor.
    let program = backend::compile_module(&squeezed, &backend::CodegenOpts::default());
    println!(
        "machine code: {} instructions ({} bytes incl. skeletons)",
        program.static_insts(),
        program.code_bytes()
    );
    let result = sim::run_program(&program, &sim::SimConfig::default(), &[])?;
    println!(
        "simulator output {:?}, {} misspeculation(s), {} cycles, {:.1} nJ",
        result.outputs,
        result.counts.misspecs,
        result.cycles,
        result.total_energy() / 1000.0
    );
    assert_eq!(result.outputs, r.outputs);
    assert!(
        result.counts.misspecs >= 1,
        "the §3 example must misspeculate"
    );
    Ok(())
}
