//! The paper's Listing 1 scenario: Boyer–Moore–Horspool written with
//! `size_t` (64-bit) lengths, where run-time values fit comfortably in
//! 8 bits — until an adversarial input makes them overflow and the
//! misspeculation machinery earns its keep.
//!
//! ```sh
//! cargo run --release -p bitspec --example stringsearch_speculation
//! ```

use bitspec::{build, simulate, BitwidthHeuristic, BuildConfig, Workload};

const SRC: &str = r#"
    global u8 text[4096];
    global u8 pat[16];
    global u8 skip[256];

    u64 strlen8(u8* s) {
        u64 n = 0;
        while (s[n] != 0) { n = n + 1; }
        return n;
    }

    void main() {
        u64 textlen = strlen8(text);   // size_t in the original
        u64 patlen = strlen8(pat);
        for (u32 i = 0; i < 256; i++) { skip[i] = (u8)patlen; }
        for (u64 i = 0; i + 1 < patlen; i = i + 1) {
            skip[pat[i]] = (u8)(patlen - 1 - i);
        }
        u32 found = 0;
        u64 pos = patlen - 1;
        while (pos < textlen) {
            u64 j = 0;
            while (j < patlen && pat[patlen - 1 - j] == text[pos - j]) {
                j = j + 1;
            }
            if (j == patlen) { found++; pos = pos + patlen; }
            else { pos = pos + skip[text[pos]]; }
        }
        out(found);
        out((u32)textlen);
    }
"#;

fn make_text(len: usize) -> Vec<u8> {
    let mut text = Vec::with_capacity(len + 1);
    for i in 0..len {
        text.push(b'a' + (i % 13) as u8);
    }
    // Plant some matches.
    let mut start = 50;
    while start + 6 < len {
        text[start..start + 6].copy_from_slice(b"needle");
        start += 211;
    }
    text.push(0);
    text
}

fn run(name: &str, text_len: usize, train_len: usize) -> Result<(), Box<dyn std::error::Error>> {
    let w = Workload::from_source("stringsearch", SRC)
        .with_input("text", make_text(text_len))
        .with_input("pat", b"needle\0".to_vec())
        .with_train_input("text", make_text(train_len))
        .with_train_input("pat", b"needle\0".to_vec());

    let baseline = build(&w, &BuildConfig::baseline())?;
    let bitspec = build(&w, &BuildConfig::bitspec_with(BitwidthHeuristic::Max))?;
    let rb = simulate(&baseline, &w)?;
    let rs = simulate(&bitspec, &w)?;
    assert_eq!(rb.outputs, rs.outputs);
    println!("--- {name}: text={text_len}B (trained on {train_len}B)");
    println!("    matches found    : {}", rb.outputs[0]);
    println!("    misspeculations  : {}", rs.counts.misspecs);
    println!(
        "    dyn instructions : {} -> {} ({:+.1}%)",
        rb.counts.dyn_insts,
        rs.counts.dyn_insts,
        100.0 * (rs.counts.dyn_insts as f64 / rb.counts.dyn_insts as f64 - 1.0)
    );
    println!(
        "    energy           : {:.1} -> {:.1} nJ ({:+.1}%)",
        rb.total_energy() / 1000.0,
        rs.total_energy() / 1000.0,
        100.0 * (rs.total_energy() / rb.total_energy() - 1.0)
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // In-profile: lengths < 256 at run time, exactly as during training —
    // values stay in slices, no misspeculation.
    run("in-profile", 200, 200)?;
    // Out-of-profile: the 8-bit speculation on positions overflows on a
    // 4 KiB text; the handlers re-execute at 64 bits and the answer is
    // still exact.
    run("out-of-profile", 4000, 200)?;
    Ok(())
}
