//! Quickstart: compile a small program for the BASELINE and BITSPEC
//! processors, simulate both, and compare energy.
//!
//! ```sh
//! cargo run --release -p bitspec --example quickstart
//! ```

use bitspec::{build, simulate, BuildConfig, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A checksum kernel with many narrow accumulators — the Figure 2
    // scenario: more live byte-sized values than the register file has
    // word registers.
    let src = r#"
        global u8 data[2048];
        void main() {
            u32 a0 = 0; u32 a1 = 1; u32 a2 = 2; u32 a3 = 3;
            u32 a4 = 4; u32 a5 = 5; u32 a6 = 6; u32 a7 = 7;
            u32 a8 = 8; u32 a9 = 9; u32 aA = 10; u32 aB = 11;
            for (u32 i = 0; i < 2048; i++) {
                u32 x = data[i];
                a0 = (a0 + x) & 0xFF;      a1 = (a1 ^ a0) & 0xFF;
                a2 = (a2 + (a1 >> 1)) & 0xFF; a3 = (a3 ^ (a2 + x)) & 0xFF;
                a4 = (a4 + a3) & 0xFF;     a5 = (a5 ^ a4) & 0xFF;
                a6 = (a6 + (a5 >> 2)) & 0xFF; a7 = (a7 ^ a6) & 0xFF;
                a8 = (a8 + a7) & 0xFF;     a9 = (a9 ^ a8) & 0xFF;
                aA = (aA + a9) & 0xFF;     aB = (aB ^ aA) & 0xFF;
            }
            out(a0 | (a3 << 8) | (a7 << 16) | (aB << 24));
        }
    "#;
    let data: Vec<u8> = (0..2048u32).map(|i| (i * 37 + 11) as u8).collect();
    let workload = Workload::from_source("quickstart", src).with_input("data", data);

    let baseline = build(&workload, &BuildConfig::baseline())?;
    let bitspec = build(&workload, &BuildConfig::bitspec())?;

    let rb = simulate(&baseline, &workload)?;
    let rs = simulate(&bitspec, &workload)?;
    assert_eq!(
        rb.outputs, rs.outputs,
        "the co-design must preserve results"
    );

    println!("output checksum : {:#010x}", rb.outputs[0]);
    println!("narrowed values : {}", bitspec.squeeze.narrowed);
    println!("spec. regions   : {}", bitspec.squeeze.regions);
    println!();
    println!("                  {:>12} {:>12}", "BASELINE", "BITSPEC");
    println!(
        "dyn instructions  {:>12} {:>12}",
        rb.counts.dyn_insts, rs.counts.dyn_insts
    );
    println!(
        "spill reloads     {:>12} {:>12}",
        rb.counts.spill_loads, rs.counts.spill_loads
    );
    println!(
        "8-bit reg access  {:>12} {:>12}",
        rb.activity.reg_accesses_8, rs.activity.reg_accesses_8
    );
    println!(
        "energy (nJ)       {:>12.1} {:>12.1}",
        rb.total_energy() / 1000.0,
        rs.total_energy() / 1000.0
    );
    println!(
        "\nBITSPEC saves {:.1}% energy on this kernel",
        100.0 * (1.0 - rs.total_energy() / rb.total_energy())
    );
    Ok(())
}
