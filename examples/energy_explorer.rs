//! Energy explorer: sweep the evaluation matrix (heuristics,
//! optimizations, expander, speculation, DTS) for one workload and print
//! the energy landscape.
//!
//! ```sh
//! cargo run --release -p bitspec --example energy_explorer
//! ```

use bitspec::{build, simulate, Arch, BitwidthHeuristic, BuildConfig, Workload};

fn workload() -> Workload {
    // A CRC-style kernel with an outlier-prone length counter.
    let src = r#"
        global u8 input[4096];
        global u32 tab[256];
        void main() {
            for (u32 i = 0; i < 256; i++) {
                u32 c = i;
                for (u32 k = 0; k < 8; k++) {
                    if (c & 1) { c = 0xEDB88320 ^ (c >> 1); } else { c = c >> 1; }
                }
                tab[i] = c;
            }
            u32 pos = 0;
            u32 acc = 0;
            while (input[pos] != 0) {
                u32 crc = 0xFFFFFFFF;
                u64 len = 0;
                while (input[pos] != 0 && input[pos] != 10) {
                    crc = tab[(crc ^ input[pos]) & 0xFF] ^ (crc >> 8);
                    pos++;
                    len = len + 1;
                }
                if (input[pos] == 10) { pos++; }
                acc ^= crc + (u32)len;
            }
            out(acc);
        }
    "#;
    let mut data = Vec::new();
    for line in 0..40 {
        let len = 20 + (line * 13) % 120;
        for i in 0..len {
            data.push(b'a' + ((line + i) % 23) as u8);
        }
        data.push(b'\n');
    }
    data.push(0);
    Workload::from_source("explorer", src).with_input("input", data)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = workload();
    let base = build(&w, &BuildConfig::baseline())?;
    let rb = simulate(&base, &w)?;
    let e0 = rb.total_energy();
    println!(
        "{:<34} {:>10} {:>9} {:>9}",
        "configuration", "energy nJ", "delta%", "misspecs"
    );
    let row = |label: &str, cfg: &BuildConfig| -> Result<(), Box<dyn std::error::Error>> {
        let c = build(&w, cfg)?;
        let r = simulate(&c, &w)?;
        assert_eq!(r.outputs, rb.outputs);
        println!(
            "{label:<34} {:>10.1} {:>8.1}% {:>9}",
            r.total_energy() / 1000.0,
            100.0 * (r.total_energy() / e0 - 1.0),
            r.counts.misspecs
        );
        Ok(())
    };
    row("BASELINE", &BuildConfig::baseline())?;
    for h in BitwidthHeuristic::ALL {
        row(&format!("BITSPEC T={h}"), &BuildConfig::bitspec_with(h))?;
    }
    row(
        "BITSPEC, no compare-elim",
        &BuildConfig {
            compare_elim: false,
            ..BuildConfig::bitspec()
        },
    )?;
    row(
        "BITSPEC, no bitmask-elision",
        &BuildConfig {
            bitmask_elision: false,
            ..BuildConfig::bitspec()
        },
    )?;
    row(
        "BITSPEC, no expander",
        &BuildConfig {
            expander: opt::ExpanderConfig {
                enabled: false,
                ..Default::default()
            },
            ..BuildConfig::bitspec()
        },
    )?;
    row(
        "register packing, no speculation",
        &BuildConfig {
            arch: Arch::NoSpec,
            ..BuildConfig::baseline()
        },
    )?;
    row(
        "DTS (time squeezing)",
        &BuildConfig {
            dts: true,
            ..BuildConfig::baseline()
        },
    )?;
    row(
        "DTS + BITSPEC",
        &BuildConfig {
            dts: true,
            ..BuildConfig::bitspec()
        },
    )?;
    Ok(())
}
