#!/bin/sh
# Local CI gate: formatting, lints, and the tier-1 test suite.
# Everything runs offline; the workspace has no external dependencies.
set -eux

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q

# Smoke the perf harnesses: the substrate microbenchmarks (fast + reference
# simulator engines) and the engine-comparison target (minimum 5 reps; also
# checks BENCH_sim.json generation end to end, and --check fails the gate
# if the turbo engine's median total regresses below the fast engine's).
cargo bench -p bench --bench experiments -- substrate_simulator
cargo run --release -p bench --bin simperf -- --check 1

# Compiler side: the profiler engine contract, then the staged-pipeline
# target (2 reps → min-of-2 sweeps; also checks BENCH_build.json
# generation and asserts fast/reference profiler equivalence end to end;
# its -j cold-build matrix aborts on any parallel-vs-serial suite
# fingerprint divergence, and its incremental leg asserts a
# one-function rebuild links bit-identically to the cold build).
cargo test --release -q -p bitspec --test profiler_equivalence
cargo run --release -p bench --bin buildperf -- 2

# Parallel & incremental build determinism: -j1 vs -j8 sweeps of the
# suite (memory + disk store tiers), function-cache invalidation
# precision, pool output ordering, and the fuzzer's seeded
# serial/parallel/incremental agreement property.
cargo test --release -q -p bitspec --test parallel_determinism --test fn_cache
cargo test --release -q -p bench --test pool_order
cargo test --release -q -p fuzz --test parallel_incremental

# Pass-manager smoke: a gated BITSPEC build with verify-each produces a
# JSON pass trace naming every registered pass with nonzero timings, the
# golden pass order holds per architecture, and BITSPEC_PRINT_AFTER
# renders every corpus entry's IR without panicking or changing output.
cargo test --release -q -p bitspec --test pass_trace --test pass_order
cargo test --release -q -p fuzz --test print_after

# Differential fuzzing: a fixed-seed smoke batch (deterministic, exits
# nonzero on any divergence) plus replay of every minimized corpus entry.
cargo run --release -p fuzz --bin fuzzer -- --seed 42 --iters 50 --no-save
cargo test --release -q -p fuzz --test fuzz_corpus

# Artifact store round-trip: the store/codec integration tests (corrupt
# entries recompute + rewrite, publish races, GC cap), then a bitspecd
# smoke — build a batch against a scratch store, re-serve it from a
# second cold process (memory caches necessarily empty, so every cell
# must come off disk bit-identically), and diff the result streams.
cargo test --release -q -p bitspec --test store --test wire_roundtrip
cargo test --release -q -p serve --test serve_integration
STORE_DIR=$(mktemp -d)
cat > "$STORE_DIR/batch.txt" <<'EOF'
sim crc32 config=bitspec
sim crc32 config=baseline
sim basicmath config=bitspec
EOF
cargo run --release -p serve --bin bitspecd -- \
  --store "$STORE_DIR/store" --ordered --file "$STORE_DIR/batch.txt" \
  | grep -v '"summary"' | sed 's/"source": "[a-z-]*"/"source": "-"/' \
  > "$STORE_DIR/cold.jsonl"
cargo run --release -p serve --bin bitspecd -- \
  --store "$STORE_DIR/store" --ordered --file "$STORE_DIR/batch.txt" \
  | tee "$STORE_DIR/warm.raw" \
  | grep -v '"summary"' | sed 's/"source": "[a-z-]*"/"source": "-"/' \
  > "$STORE_DIR/warm.jsonl"
grep -q '"computed": 0' "$STORE_DIR/warm.raw"   # everything off disk
cmp "$STORE_DIR/cold.jsonl" "$STORE_DIR/warm.jsonl"  # bit-identical
rm -rf "$STORE_DIR"
