#!/bin/sh
# Local CI gate: formatting, lints, and the tier-1 test suite.
# Everything runs offline; the workspace has no external dependencies.
set -eux

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q
